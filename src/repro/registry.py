"""Typed plugin registries: the extension seam of the run layer.

Every orchestration surface needs to turn *names* into *components*:
``"jacobi"`` into a workload class, ``"finepack"`` into a paradigm,
``"two_level"`` into a topology factory, ``"flaky-retimer"`` into a
fault scenario.  Before this module each surface kept its own dict and
rolled its own lookup-plus-error-message; now there is one
:class:`Registry` type with uniform ``@register`` decorators and
did-you-mean resolution errors, and one instance per component kind:

=================  ==========================  =========================
registry           registered value            populated by
=================  ==========================  =========================
:data:`workloads`  workload class              :mod:`repro.workloads`
:data:`paradigms`  paradigm class              :mod:`repro.sim.paradigms`
:data:`topologies` topology factory callable   :mod:`repro.interconnect.topology`
:data:`scenarios`  fault-scenario dict         :mod:`repro.faults.scenarios`
=================  ==========================  =========================

Registries are *lazily populated*: each knows the module whose import
performs its registrations, and imports it on first lookup.  That keeps
this module import-cycle-free (it imports nothing from ``repro``) while
letting ``repro.registry.paradigms.resolve("finepack")`` work without
the caller importing the defining module first.

Downstream code registers its own components the same way the built-ins
do::

    from repro import registry

    @registry.workloads.register("mywork")
    class MyWorkload(MultiGPUWorkload):
        ...
"""

from __future__ import annotations

import difflib
import importlib
import threading
from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


class RegistryError(KeyError):
    """An unknown name was looked up in a registry.

    Subclasses :class:`KeyError` so legacy ``except KeyError`` callers
    keep working; ``str()`` is the full did-you-mean message (plain
    ``KeyError`` would repr-quote it).
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message


class Registry(Generic[T]):
    """A name -> component mapping with decorator registration.

    Parameters
    ----------
    kind:
        Human-readable component kind ("workload", "paradigm", ...),
        used in error messages.
    populated_by:
        Optional dotted module name imported on first lookup; the
        module's import-time ``@register`` calls fill the registry.
    """

    def __init__(self, kind: str, populated_by: str | None = None) -> None:
        self.kind = kind
        self._populated_by = populated_by
        self._entries: dict[str, T] = {}
        self._lock = threading.Lock()
        self._loaded = populated_by is None

    # -- registration -----------------------------------------------

    def register(self, name: str) -> Callable[[T], T]:
        """Decorator: register the decorated object under ``name``."""

        def deco(obj: T) -> T:
            self.add(name, obj)
            return obj

        return deco

    def add(self, name: str, obj: T, *, replace: bool = False) -> None:
        if not name:
            raise ValueError(f"{self.kind} name must be non-empty")
        if not replace and name in self._entries:
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                f"({self._entries[name]!r}); pass replace=True to override"
            )
        self._entries[name] = obj

    # -- population -------------------------------------------------

    def _ensure_populated(self) -> None:
        if self._loaded:
            return
        with self._lock:
            if self._loaded:
                return
            # Mark loaded *before* importing: the defining module's own
            # ``@register`` calls re-enter the registry.
            self._loaded = True
            assert self._populated_by is not None
            importlib.import_module(self._populated_by)

    # -- lookup -----------------------------------------------------

    def resolve(self, name: str) -> T:
        """The component registered under ``name``.

        Raises :class:`RegistryError` with close-match suggestions for
        unknown names -- the single error-message surface the CLI, the
        chaos sweeps and the run layer all share.
        """
        self._ensure_populated()
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(self._unknown(name)) from None

    def get(self, name: str, default: T | None = None) -> T | None:
        self._ensure_populated()
        return self._entries.get(name, default)

    def names(self) -> list[str]:
        self._ensure_populated()
        return sorted(self._entries)

    def items(self) -> list[tuple[str, T]]:
        self._ensure_populated()
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        self._ensure_populated()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Registry kind={self.kind!r} entries={self.names()!r}>"

    def _unknown(self, name: str) -> str:
        known = self.names()
        msg = f"unknown {self.kind} {name!r}"
        close = difflib.get_close_matches(name, known, n=3, cutoff=0.5)
        if close:
            msg += "; did you mean " + " or ".join(repr(c) for c in close) + "?"
        msg += f" (known: {', '.join(known)})"
        return msg


#: Workload name -> :class:`~repro.workloads.base.MultiGPUWorkload` subclass.
workloads: Registry[type] = Registry("workload", populated_by="repro.workloads")

#: Paradigm name -> :class:`~repro.sim.paradigms.Paradigm` subclass.
paradigms: Registry[type] = Registry("paradigm", populated_by="repro.sim.paradigms")

#: Topology kind -> factory callable (``n_gpus=..., generation=..., ...``).
topologies: Registry[Callable] = Registry(
    "topology", populated_by="repro.interconnect.topology"
)

#: Scenario preset name -> scenario dict (the chaos JSON schema).
scenarios: Registry[dict] = Registry(
    "fault scenario", populated_by="repro.faults.scenarios"
)
