"""Closed-form per-paradigm protocol cost models.

Each function predicts the wire traffic one (source phase, destination)
pair generates under a paradigm: payload and overhead bytes, message
counts by kind, packing statistics, and the union of delivered byte
ranges (for the useful/wasted classification, which is shared with the
DES -- see :func:`repro.sim.metrics.classify_ranges`).

Exactness contract (derivations in ``docs/analytical.md``):

* ``p2p``, ``dma``, ``dma_sliced``, ``infinite`` -- *exact*: their
  byte accounting is a pure function of op sizes and transfer regions.
* ``finepack`` -- exact when a destination's stream packs into a
  single packet (one flush epoch); otherwise a first-order epoch model
  (payload-capacity / queue-entry / window-segment / atomic-conflict
  flush causes) with duplicate-delivery and sub-header scaling.
* ``wc``/``gps`` -- line-run model of the final footprint; FIFO
  eviction re-flushes and atomic line splits are neglected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import FinePackConfig
from ..interconnect.message import MessageKind
from ..interconnect.pcie import DW_BYTES, PCIeProtocol
from ..trace.intervals import IntervalSet
from .stats import DstOps, overlap_count, sector_expand


@dataclass
class PairCost:
    """Predicted wire traffic for one (src, dst, iteration) pair."""

    payload: int = 0
    overhead: int = 0
    messages: int = 0
    #: Sum of ``stores_packed`` over every message (atomics included).
    stores_carried: int = 0
    by_kind: dict[MessageKind, int] = field(default_factory=dict)
    #: Messages of the packed kinds (STORE/COMBINED_STORE/FINEPACK)
    #: and the stores they absorb -- the Figure 11 statistic.
    packed_messages: int = 0
    packed_stores: int = 0
    #: Union of delivered byte ranges (classification input).
    delivered: IntervalSet = field(default_factory=IntervalSet.empty)

    @property
    def wire_bytes(self) -> int:
        return self.payload + self.overhead

    def _count(self, kind: MessageKind, n: int) -> None:
        if n:
            self.by_kind[kind] = self.by_kind.get(kind, 0) + n


def _add_atomics(
    cost: PairCost, protocol: PCIeProtocol, atomics: DstOps | None
) -> None:
    """Atomics are never coalesced: one ATOMIC TLP each, exactly."""
    if atomics is None or atomics.count == 0:
        return
    total = atomics.total_bytes
    cost.payload += total
    cost.overhead += atomics.count * protocol.per_tlp_overhead + (
        atomics.padded_bytes - total
    )
    cost.messages += atomics.count
    cost.stores_carried += atomics.count
    cost._count(MessageKind.ATOMIC, atomics.count)
    cost.delivered = cost.delivered.union(atomics.footprint)


def p2p_cost(
    protocol: PCIeProtocol, stores: DstOps | None, atomics: DstOps | None
) -> PairCost:
    """Fine-grained p2p: one posted memory-write TLP per store. Exact."""
    cost = PairCost()
    if stores is not None and stores.count:
        total = stores.total_bytes
        cost.payload = total
        cost.overhead = stores.count * protocol.per_tlp_overhead + (
            stores.padded_bytes - total
        )
        cost.messages = stores.count
        cost.stores_carried = stores.count
        cost.packed_messages = stores.count
        cost.packed_stores = stores.count
        cost._count(MessageKind.STORE, stores.count)
        cost.delivered = stores.footprint
    _add_atomics(cost, protocol, atomics)
    return cost


def wc_cost(
    protocol: PCIeProtocol,
    stores: DstOps | None,
    atomics: DstOps | None,
    line_bytes: int = 128,
    sector_bytes: int = 1,
) -> PairCost:
    """Write-combining buffers: one COMBINED_STORE TLP per maximal run
    of dirty (sector-expanded) bytes in each flushed line.

    First-order: assumes each touched line is flushed once with its
    final byte-enable mask (FIFO eviction of a line that is later
    re-dirtied, and the early flush an atomic forces on its own line,
    are neglected -- both only *split* runs, adding per-TLP overhead).
    """
    cost = PairCost()
    if stores is not None and stores.count:
        delivered = sector_expand(stores.footprint, sector_bytes)
        geo = (
            stores.geometry(line_bytes)
            if sector_bytes == 1
            else _expanded_geometry(delivered, line_bytes)
        )
        cost.payload = delivered.total_bytes
        cost.overhead = geo.runs * protocol.per_tlp_overhead + geo.pad_bytes
        cost.messages = geo.runs
        cost.stores_carried = stores.count
        cost.packed_messages = geo.runs
        cost.packed_stores = stores.count
        cost._count(MessageKind.COMBINED_STORE, geo.runs)
        cost.delivered = delivered
    _add_atomics(cost, protocol, atomics)
    return cost


def _expanded_geometry(delivered: IntervalSet, line_bytes: int):
    from .stats import line_geometry

    return line_geometry(delivered, line_bytes)


def finepack_cost(
    config: FinePackConfig,
    protocol: PCIeProtocol,
    stores: DstOps | None,
    atomics: DstOps | None,
) -> PairCost:
    """FinePack packing: remote-write-queue flush epochs in closed form.

    Let ``S`` = raw store bytes, ``U`` = footprint bytes, ``R`` = line
    runs of the footprint, ``n`` the op count.  Flushing partitions the
    issue stream into ``F`` *epochs*; what each epoch re-buffers,
    re-splits and re-ships depends on how far apart (in issue order)
    related ops are, which the :class:`~repro.analytical.stats
    .PackProfile` captures as three distance distributions.  With a
    uniform epoch boundary model -- two ops ``d`` apart straddle a
    boundary with probability ``min(1, d/span)`` for epoch length
    ``span = n/F`` -- the expectations are:

    * entry allocations ``A(F)``: an op allocates a queue entry unless
      a previous op touched its line *within the epoch*;
    * sub-transactions ``subs(F)``: every (op x spanned line) piece is
      a sub-transaction unless a byte-adjacent or same-address
      predecessor in the same epoch absorbs it;
    * shipped payload ``payload(F)``: ``U`` plus the fraction of the
      ``S - U`` duplicate bytes whose re-write lands in a *different*
      epoch than the original.

    ``F`` is then the smallest count satisfying every flush cause,
    found by iterating the monotone map from the lower bound up::

        F = max(W, ceil(A(F) / E), ceil((payload(F) + h*subs(F)) / P))
            + C

    with ``W`` issue-order window segments (WINDOW_MISS), ``E``/``P``
    the entry/payload capacities (ENTRIES_FULL / PAYLOAD_FULL), ``h``
    the sub-header size and ``C`` the atomics overlapping buffered
    store bytes (ATOMIC_CONFLICT).  For ``F == 1`` every term is exact
    (payload ``U``, ``R`` sub-headers, exact DW pad); multi-epoch
    padding uses the expected 1.5 B of uniform DW phase per packet.
    """
    cost = PairCost()
    if stores is not None and stores.count:
        sub = config.subheader_bytes
        cap = config.max_payload_bytes
        entries = config.queue_entries_per_partition
        u = stores.footprint.total_bytes
        s = stores.total_bytes
        n = stores.count
        prof = stores.pack_profile(config.entry_bytes)
        conflicts = (
            overlap_count(atomics.addrs, atomics.sizes, stores.footprint)
            if atomics is not None and atomics.count
            else 0
        )
        window = stores.window_segments(config.window_bytes)
        dup = s - u
        flushes = max(window, 1)
        payload = u
        subs_est = float(prof.pieces - prof.merge.d_sorted.size)
        for _ in range(64):
            epochs = flushes + conflicts
            span = n / epochs
            allocs = prof.alloc.crossings(span)
            subs_est = prof.pieces - prof.merge.merges(span)
            if dup:
                frac = prof.dup.weighted_crossing_fraction(span)
                if frac == 0.0:
                    # Duplicates from partial overlaps only: fall back
                    # to uniform spreading over epochs.
                    frac = 1.0 - 1.0 / epochs
                payload = u + int(round(dup * frac))
            nxt = max(
                window,
                -(-int(round(allocs)) // entries),
                -(-int(round(payload + sub * subs_est)) // cap),
                1,
            )
            if nxt <= flushes:
                break
            flushes = nxt
        epochs = flushes + conflicts
        if epochs == 1:
            payload = u
            subs = stores.geometry(config.entry_bytes).runs
            pad = (-(payload + sub * subs)) % DW_BYTES
        else:
            subs = max(int(round(subs_est)), epochs)
            pad = (3 * epochs) // 2  # E[DW pad] = 1.5 B/packet
        cost.payload = payload
        cost.overhead = epochs * protocol.per_tlp_overhead + sub * subs + pad
        cost.messages = epochs
        cost.stores_carried = stores.count
        cost.packed_messages = epochs
        cost.packed_stores = stores.count
        cost._count(MessageKind.FINEPACK, epochs)
        cost.delivered = stores.footprint
    _add_atomics(cost, protocol, atomics)
    return cost


def dma_cost(
    protocol: PCIeProtocol,
    transfers: list,
    slices: int = 1,
) -> PairCost:
    """Bulk DMA: each transfer (or slice chunk) split into max-payload
    TLPs by :meth:`PCIeProtocol.bulk_transfer_cost`. Exact."""
    cost = PairCost()
    starts: list[int] = []
    lens: list[int] = []
    for tr in transfers:
        if slices <= 1:
            chunks = [tr.nbytes]
        else:
            base = tr.nbytes // slices
            chunks = [base] * (slices - 1) + [tr.nbytes - base * (slices - 1)]
        n_chunks = 0
        for chunk in chunks:
            if chunk <= 0:
                continue
            payload, overhead = protocol.bulk_transfer_cost(chunk)
            cost.payload += payload
            cost.overhead += overhead
            n_chunks += 1
        cost.messages += n_chunks
        cost._count(MessageKind.DMA_CHUNK, n_chunks)
        starts.append(tr.dst_addr)
        lens.append(tr.nbytes)
    cost.delivered = IntervalSet.from_ranges(starts, lens)
    return cost
