"""Closed-form analytical fidelity tier (``fidelity="analytical"``).

This package predicts :class:`~repro.sim.metrics.RunMetrics` for a
:class:`~repro.run.spec.RunSpec` *without running the discrete-event
simulator*: one streaming, vectorized pass over the trace's phase
columns computes per-destination statistics (:mod:`.stats`), which are
composed with per-paradigm protocol cost models (:mod:`.protocol`) and
topology hop/serialization terms (:mod:`.timing`) into a full metrics
object (:mod:`.model`).

The byte-category predictions (payload, overhead, useful/wasted,
goodput) are exact for ``p2p``/``dma``/``dma_sliced``/``infinite`` and
first-order for ``finepack``/``wc``/``gps``; the model's error budget
against the DES is asserted continuously by
``tools/calibrate_analytical.py`` (see ``docs/analytical.md`` for the
derivation of every term and the calibration methodology).

Entry point::

    from repro.analytical import predict_metrics
    metrics = predict_metrics(spec, trace)   # no event loop

or, transparently, any :class:`~repro.run.RunSpec` with
``fidelity="analytical"`` executed through
:class:`~repro.run.RunContext` / :func:`~repro.run.execute_grid` /
the CLI (``--fidelity analytical``).
"""

from .model import predict_metrics
from .protocol import PairCost
from .stats import PhaseStats, phase_stats

__all__ = ["predict_metrics", "PairCost", "PhaseStats", "phase_stats"]
