"""Per-phase trace-column statistics for the analytical tier.

Everything the closed-form cost models need is computable in one
vectorized pass over a phase's store/atomic columns, grouped by
destination:

* op counts and byte sums (with the DW-padded sums the PCIe TLP
  padding term needs),
* the delivered-byte *footprint* (an :class:`IntervalSet` union of the
  store ranges -- duplicates collapse, exactly like coalescing
  hardware),
* cache-line geometry of that footprint (line *runs*, distinct lines,
  head/tail padding) for the write-combining and FinePack models,
* FinePack window segmentation (transitions of the address's window id
  in issue order), and
* atomic/footprint overlap counts (the ATOMIC_CONFLICT flush term).

Phases repeat across iterations in steady-state traces, so
:func:`phase_stats` memoizes by a blake2b content hash of the phase's
op columns -- the same idiom (and the same hit pattern) as
``FinePackEgress.phase_ops``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..interconnect.pcie import DW_BYTES
from ..trace.intervals import IntervalSet
from ..trace.stream import KernelPhase

#: Memoized :class:`PhaseStats` by content hash, FIFO-bounded.
_MEMO_MAX_ENTRIES = 256
_memo: dict[bytes, "PhaseStats"] = {}


@dataclass(frozen=True)
class LineGeometry:
    """Cache-line structure of a byte footprint.

    ``runs`` is the number of maximal contiguous pieces after splitting
    every footprint interval at line boundaries -- one wire message per
    run for write-combining egress, one sub-transaction per run for a
    single-epoch FinePack flush.  ``lines`` is the number of *distinct*
    lines touched (queue-entry occupancy).  ``pad_bytes`` is the total
    DW padding the runs pay on the wire.
    """

    runs: int
    lines: int
    pad_bytes: int


def line_geometry(fp: IntervalSet, line_bytes: int) -> LineGeometry:
    """Line runs / distinct lines / DW padding of a footprint."""
    if not fp:
        return LineGeometry(0, 0, 0)
    s, e = fp.starts, fp.ends
    first = s // line_bytes
    last = (e - 1) // line_bytes
    n_lines = last - first + 1
    runs = int(n_lines.sum())
    # Distinct lines: union of the per-interval line-index ranges.
    lines = IntervalSet.from_ranges(first, n_lines).total_bytes
    # DW padding: only head/tail pieces of each interval can be
    # unaligned (middle pieces are whole lines; line_bytes % 4 == 0 for
    # every modeled line size).
    single = n_lines == 1
    head = np.where(single, e - s, (first + 1) * line_bytes - s)
    tail = np.where(single, 0, e - last * line_bytes)
    pad = int(((-head) % DW_BYTES).sum() + ((-tail) % DW_BYTES).sum())
    if line_bytes % DW_BYTES:
        mid = np.maximum(n_lines - 2, 0)
        pad += int((mid * ((-line_bytes) % DW_BYTES)).sum())
    return LineGeometry(runs=runs, lines=lines, pad_bytes=pad)


def sector_expand(fp: IntervalSet, sector_bytes: int) -> IntervalSet:
    """Round every footprint interval out to sector boundaries.

    Models GPS-style sector-granular replication: flushed lines ship
    whole sectors, over-transferring the untouched bytes inside each
    touched sector.
    """
    if sector_bytes <= 1 or not fp:
        return fp
    starts = (fp.starts // sector_bytes) * sector_bytes
    ends = -(-fp.ends // sector_bytes) * sector_bytes
    return IntervalSet.from_ranges(starts, ends - starts)


def overlap_count(addrs: np.ndarray, sizes: np.ndarray, fp: IntervalSet) -> int:
    """How many ``[addr, addr+size)`` ranges overlap the footprint."""
    if addrs.size == 0 or not fp:
        return 0
    # The first footprint interval ending after the range's start must
    # begin before the range's end.
    i = np.searchsorted(fp.ends, addrs, side="right")
    ok = i < len(fp)
    j = np.clip(i, 0, len(fp) - 1)
    ok &= fp.starts[j] < addrs + sizes
    return int(ok.sum())


#: Sentinel distance for "no previous related op" (effectively +inf).
_FAR = 1 << 62


@dataclass(frozen=True)
class DistanceProfile:
    """Sorted issue-distance distribution with prefix sums.

    Supports O(log n) evaluation of the two expectations the FinePack
    epoch fixed point needs, for an epoch length of ``span`` ops:

    * ``crossings(span)`` -- E[#ops whose previous related op is in an
      *earlier* epoch] = ``Σ min(1, d/span)`` (+1 per op with no
      previous related op at all);
    * ``merges(span)`` -- E[#ops whose previous related op is in the
      *same* epoch] = ``Σ max(0, 1 - d/span)``.

    The ``min(1, d/span)`` kernel is the probability that a uniformly
    placed epoch boundary falls between two ops ``d`` apart.
    """

    d_sorted: np.ndarray
    cum_d: np.ndarray
    #: Ops with no previous related op (always cross).
    n_first: int = 0
    #: Optional weights (byte sizes) and weighted-distance prefixes.
    cum_w: np.ndarray | None = None
    cum_wd: np.ndarray | None = None

    @classmethod
    def build(
        cls, d: np.ndarray, n_first: int = 0, weights: np.ndarray | None = None
    ) -> "DistanceProfile":
        order = np.argsort(d, kind="stable")
        ds = d[order]
        cum_d = np.concatenate([[0], np.cumsum(ds)])
        cum_w = cum_wd = None
        if weights is not None:
            w = weights[order]
            cum_w = np.concatenate([[0], np.cumsum(w)])
            cum_wd = np.concatenate([[0], np.cumsum(w * ds)])
        return cls(ds, cum_d, n_first, cum_w, cum_wd)

    def crossings(self, span: float) -> float:
        k = int(np.searchsorted(self.d_sorted, span))
        return (
            self.n_first
            + (self.d_sorted.size - k)
            + float(self.cum_d[k]) / span
        )

    def merges(self, span: float) -> float:
        k = int(np.searchsorted(self.d_sorted, span))
        return k - float(self.cum_d[k]) / span

    def weighted_crossing_fraction(self, span: float) -> float:
        """``Σ w·min(1, d/span) / Σ w`` (0 when unweighted/empty)."""
        if self.cum_w is None or not self.cum_w[-1]:
            return 0.0
        k = int(np.searchsorted(self.d_sorted, span))
        shipped = (self.cum_w[-1] - self.cum_w[k]) + self.cum_wd[k] / span
        return float(shipped) / float(self.cum_w[-1])


@dataclass(frozen=True)
class PackProfile:
    """Issue-order structure of one destination stream for FinePack.

    ``pieces`` is the sub-transaction upper bound: every (op x spanned
    line) piece, before any within-epoch merging.  ``alloc`` carries
    distances to each op's previous same-line op (an op re-allocates a
    queue entry only when a flush separated them); ``merge`` carries
    distances to each op's previous byte-adjacent or same-address op
    (pieces merge into one sub-transaction only within an epoch);
    ``dup`` carries size-weighted same-address distances (a duplicated
    byte is re-shipped only when a flush separated the writes).
    """

    pieces: int
    alloc: DistanceProfile
    merge: DistanceProfile
    dup: DistanceProfile


def _prev_producer_distance(
    q_keys: np.ndarray, p_keys: np.ndarray
) -> np.ndarray:
    """Per op ``i``: issue distance to the latest ``j < i`` with
    ``p_keys[j] == q_keys[i]`` (``_FAR`` when none).

    One lexsort sweep: producer and query events are sorted by
    ``(key, op index, producer-first)``; within a key segment the
    nearest preceding producer row is the running maximum.
    """
    n = q_keys.size
    idx = np.arange(n)
    keys = np.concatenate([p_keys, q_keys])
    idxs = np.concatenate([idx, idx])
    flag = np.concatenate(
        [np.zeros(n, dtype=np.int8), np.ones(n, dtype=np.int8)]
    )
    order = np.lexsort((flag, idxs, keys))
    k = keys[order]
    ix = idxs[order]
    fl = flag[order]
    rows = np.arange(2 * n)
    last_prod = np.maximum.accumulate(np.where(fl == 0, rows, -1))
    seg_first = np.empty(2 * n, dtype=bool)
    seg_first[0] = True
    seg_first[1:] = k[1:] != k[:-1]
    seg_start = rows[seg_first][np.cumsum(seg_first) - 1]
    hit = (fl == 1) & (last_prod >= seg_start)
    out = np.full(n, _FAR, dtype=np.int64)
    qrows = rows[hit]
    out[ix[qrows]] = ix[qrows] - ix[last_prod[qrows]]
    return out


def _build_pack_profile(
    addrs: np.ndarray, sizes: np.ndarray, line_bytes: int
) -> PackProfile:
    n = addrs.size
    idx = np.arange(n)
    first = addrs // line_bytes
    last = (addrs + sizes - 1) // line_bytes
    pieces = int((last - first + 1).sum())

    # Entry (re-)allocation: previous op touching the same first line.
    order = np.lexsort((idx, first))
    same = first[order][1:] == first[order][:-1]
    d_alloc = (order[1:] - order[:-1])[same]
    alloc = DistanceProfile.build(d_alloc, n_first=n - int(same.sum()))

    # Same-address predecessor (duplicate writes).
    d_same = np.full(n, _FAR, dtype=np.int64)
    order = np.lexsort((idx, addrs))
    same = addrs[order][1:] == addrs[order][:-1]
    tgt = order[1:][same]
    d_same[tgt] = tgt - order[:-1][same]

    # Byte-adjacent predecessor (an op extending an earlier op's run).
    # Streaming writes extend the *immediately preceding* op; that
    # d == 1 case is the only adjacency that matters in practice, and
    # checking it is O(n) (the general any-distance predecessor search
    # is :func:`_prev_producer_distance`, kept for reference/tests).
    # Adjacency across a line boundary lands in a different queue
    # entry, so it never merges sub-transactions.
    d_adj = np.full(n, _FAR, dtype=np.int64)
    seq = (addrs[1:] == addrs[:-1] + sizes[:-1]) & (addrs[1:] % line_bytes != 0)
    d_adj[1:][seq] = 1
    d_merge = np.minimum(d_adj, d_same)
    merge = DistanceProfile.build(d_merge[d_merge < _FAR])

    dup_mask = d_same < _FAR
    dup = DistanceProfile.build(d_same[dup_mask], weights=sizes[dup_mask])
    return PackProfile(pieces=pieces, alloc=alloc, merge=merge, dup=dup)


class DstOps:
    """One destination's slice of a phase's op columns, in issue order.

    Aggregates are computed lazily and cached -- the protocol models
    only touch what their paradigm needs (line geometry for packing
    models, window segmentation and pack profiles for FinePack, padded
    sums for every TLP-per-store path).
    """

    __slots__ = (
        "addrs", "sizes", "_footprint", "_geometry", "_segments", "_profiles"
    )

    def __init__(self, addrs: np.ndarray, sizes: np.ndarray) -> None:
        self.addrs = addrs
        self.sizes = sizes
        self._footprint: IntervalSet | None = None
        self._geometry: dict[int, LineGeometry] = {}
        self._segments: dict[int, int] = {}
        self._profiles: dict[int, PackProfile] = {}

    @property
    def count(self) -> int:
        return int(self.addrs.size)

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    @property
    def padded_bytes(self) -> int:
        """Byte sum with each op DW-padded (TLP payload alignment)."""
        return int((-(-self.sizes // DW_BYTES) * DW_BYTES).sum())

    @property
    def footprint(self) -> IntervalSet:
        if self._footprint is None:
            self._footprint = IntervalSet.from_ranges(self.addrs, self.sizes)
        return self._footprint

    def geometry(self, line_bytes: int) -> LineGeometry:
        geo = self._geometry.get(line_bytes)
        if geo is None:
            geo = self._geometry[line_bytes] = line_geometry(
                self.footprint, line_bytes
            )
        return geo

    def window_segments(self, window_bytes: int) -> int:
        """Contiguous same-window segments of the issue-order stream.

        The remote-write queue flushes on every WINDOW_MISS, so each
        transition of ``addr >> offset_bits`` between consecutive ops
        costs one flush; the segment count is a lower bound on the
        packet count.
        """
        seg = self._segments.get(window_bytes)
        if seg is None:
            if self.addrs.size == 0:
                seg = 0
            else:
                w = self.addrs // window_bytes
                seg = 1 + int(np.count_nonzero(w[1:] != w[:-1]))
            self._segments[window_bytes] = seg
        return seg

    def pack_profile(self, line_bytes: int) -> PackProfile:
        """Issue-order revisit-distance profile (FinePack epoch model)."""
        prof = self._profiles.get(line_bytes)
        if prof is None:
            prof = self._profiles[line_bytes] = _build_pack_profile(
                self.addrs, self.sizes, line_bytes
            )
        return prof


@dataclass
class PhaseStats:
    """Per-destination statistics of one kernel phase."""

    gpu: int
    stores: dict[int, DstOps]
    atomics: dict[int, DstOps]

    def destinations(self) -> list[int]:
        return sorted(set(self.stores) | set(self.atomics))


def _split_by_dst(batch) -> dict[int, DstOps]:
    """Group a RemoteStoreBatch's columns by destination, order kept."""
    out: dict[int, DstOps] = {}
    if batch.count == 0:
        return out
    for dst in batch.destinations():
        idx = np.flatnonzero(batch.dsts == dst)
        out[int(dst)] = DstOps(batch.addrs[idx], batch.sizes[idx])
    return out


def _column_key(arr: np.ndarray) -> tuple:
    """O(1) fingerprint of one op column: length, end points and a
    16-point stride sample.

    Deliberately *not* a cryptographic hash of the full column --
    hashing megabytes of columns per phase per iteration was the
    dominant cost of the memo lookup itself.  Two distinct phases of a
    real trace that agree on every sampled element are vanishingly
    unlikely; the memo is an internal dedup of steady-state iterations,
    not a correctness boundary.
    """
    n = arr.size
    if n == 0:
        return (0,)
    step = max(1, n // 16)
    return (n, int(arr[0]), int(arr[-1]), arr[::step].tobytes())


def _phase_key(phase: KernelPhase) -> tuple:
    """Content fingerprint of the op columns (memo key)."""
    s, a = phase.stores, phase.atomics
    return (
        phase.gpu,
        _column_key(s.addrs), _column_key(s.sizes), _column_key(s.dsts),
        _column_key(a.addrs), _column_key(a.sizes), _column_key(a.dsts),
        tuple(
            (tr.dst, tr.dst_addr, tr.nbytes, bool(tr.aggregated))
            for tr in phase.dma
        ),
    )


def phase_stats(phase: KernelPhase) -> PhaseStats:
    """Per-destination stats for a phase, memoized by content hash."""
    key = _phase_key(phase)
    hit = _memo.get(key)
    if hit is not None:
        return hit
    stats = PhaseStats(
        gpu=phase.gpu,
        stores=_split_by_dst(phase.stores),
        atomics=_split_by_dst(phase.atomics),
    )
    if len(_memo) >= _MEMO_MAX_ENTRIES:
        _memo.pop(next(iter(_memo)))
    _memo[key] = stats
    return stats


def clear_memo() -> None:
    """Drop the phase-stats memo and the model-layer memos (tests)."""
    _memo.clear()
    from . import model

    model._PAIR_MEMO.clear()
    model._CLS_MEMO.clear()
