"""Compose phase statistics, protocol costs and timing into RunMetrics.

:func:`predict_metrics` is the analytical tier's counterpart of
:meth:`MultiGPUSystem.run`: it walks the trace's iterations in order,
but instead of scheduling per-message events it computes each
(source phase, destination) pair's wire traffic in closed form
(:mod:`.protocol`), classifies the delivered bytes with the *same*
interval arithmetic the DES uses (useful / wasted-redundant /
wasted-unread vs. the producer's footprint and the consumer's reads),
and predicts iteration times from per-link fluid loads
(:mod:`.timing`).

What is shared with the DES rather than re-derived: topology routes
and bandwidths, PCIe TLP cost formulas, the roofline compute model,
GPS subscription learning (the actual ``SubscriptionTable``), and the
consumer-read convention (iteration ``k`` feeds ``k+1``; the last
iteration self-consumes).  Fault scenarios are rejected -- degraded
runs are inherently event-ordered and belong at DES fidelity.
"""

from __future__ import annotations

import numpy as np

from ..gpu.hbm import HBMModel
from ..interconnect.pcie import PCIeProtocol
from ..sim.metrics import RunMetrics
from ..trace.intervals import IntervalSet
from .protocol import PairCost, dma_cost, finepack_cost, p2p_cost, wc_cost
from .stats import DstOps, PhaseStats, _column_key, _phase_key, phase_stats
from .timing import FabricTiming, build_topology

_STORE_PARADIGMS = frozenset({"p2p", "wc", "gps", "finepack"})
_DMA_PARADIGMS = frozenset({"dma", "dma_sliced"})

# Cross-run memos (sweeps re-predict the same trace content under many
# configs, so these are what make an analytical design sweep nearly
# free after the first spec per cell):
#
# * _PAIR_MEMO: (id(stats), paradigm, params, generation, finepack) ->
#   (stats, pair_costs, footprints, uniques).  Keyed by the *identity*
#   of the content-memoized PhaseStats (repro.analytical.stats pins one
#   object per phase content); each entry holds the stats reference so
#   its id stays valid for the entry's lifetime.
# * _CLS_MEMO: (id(delivered), id(footprint), reads fingerprint) ->
#   (delivered, footprint, useful bytes).  Delivered/footprint interval
#   sets are themselves pinned by _PAIR_MEMO entries, so store-family
#   paradigms that deliver the producer footprint share classifications
#   across sub-header/queue/generation variants.
#
# GPS bypasses both: its filter depends on the consumer's reads
# (oracle) or on mutable subscription state (learned).
_PAIR_MEMO: dict = {}
_CLS_MEMO: dict = {}
_PAIR_MEMO_MAX = 1024
_CLS_MEMO_MAX = 8192


def _memo_put(memo: dict, cap: int, key, value) -> None:
    if len(memo) >= cap:
        memo.pop(next(iter(memo)))
    memo[key] = value


def predict_metrics(spec, trace) -> RunMetrics:
    """Predict the metrics of running ``trace`` under ``spec``.

    Raises :class:`ValueError` for specs the analytical tier cannot
    model (fault scenarios, paradigms without a cost model).
    """
    if spec.scenario is not None:
        raise ValueError(
            "analytical fidelity cannot model fault scenarios; "
            "run this spec at fidelity='des'"
        )
    name = spec.paradigm
    if name not in _STORE_PARADIGMS | _DMA_PARADIGMS | {"infinite"}:
        raise ValueError(
            f"analytical fidelity has no cost model for paradigm {name!r}; "
            "run this spec at fidelity='des'"
        )
    if trace.n_gpus != spec.n_gpus:
        raise ValueError(
            f"trace is for {trace.n_gpus} GPUs, spec has {spec.n_gpus}"
        )
    params = dict(spec.paradigm_params)
    protocol = PCIeProtocol(spec.generation)
    drain = HBMModel().drain_rate()
    topology = build_topology(spec)
    fabric = FabricTiming(topology, drain) if topology is not None else None
    metrics = RunMetrics(workload=trace.name, paradigm=name, n_gpus=spec.n_gpus)

    gps_tables = None
    if name == "gps" and params.get("subscription", "learned") == "learned":
        from ..sim.gps import SubscriptionTable

        page_bytes = int(params.get("page_bytes", 4096))
        gps_tables = [
            SubscriptionTable(page_bytes=page_bytes)
            for _ in range(spec.n_gpus)
        ]

    packed_messages = 0
    packed_stores = 0
    t = 0.0
    n_iters = trace.n_iterations
    # Steady-state traces repeat iteration content verbatim; everything
    # below is translation-invariant in t, so identical (iteration,
    # consumer) pairs resolve to the same _IterationResult.  GPS
    # learned mode is stateful across iterations and bypasses the
    # cache.
    iter_cache: dict | None = {} if gps_tables is None else None
    # Pair costs and footprints are pure functions of (phase content,
    # paradigm, its cost-relevant config); the cross-run _PAIR_MEMO
    # keys them under this prediction-wide suffix.  None disables the
    # memo (GPS: reads-dependent/stateful).
    memo_ctx: tuple | None = None
    if name != "gps":
        memo_ctx = (
            name,
            tuple(sorted(params.items())),
            spec.generation,
            spec.finepack if name == "finepack" else None,
        )
    # Iteration keys by object identity (objects pinned by the trace).
    key_cache: dict[int, tuple] = {}

    def iteration_key(it) -> tuple:
        entry = key_cache.get(id(it))
        if entry is None:
            # Hold the iteration object so its id stays pinned.
            entry = key_cache[id(it)] = (it, _iteration_key(it))
        return entry[1]

    for k, iteration in enumerate(trace.iterations):
        consumer_iter = trace.iterations[min(k + 1, n_iters - 1)]
        cache_key = None
        result = None
        if iter_cache is not None:
            cache_key = (iteration_key(iteration), iteration_key(consumer_iter))
            result = iter_cache.get(cache_key)
        if result is None:
            result = _resolve_iteration(
                name, params, spec, protocol, fabric, iteration,
                consumer_iter, gps_tables, memo_ctx,
            )
            if iter_cache is not None:
                iter_cache[cache_key] = result
        result.fold_into(metrics)
        packed_messages += result.packed_messages
        packed_stores += result.packed_stores
        if fabric is not None:
            fabric.apply(result.load)
        latest = result.load.rel_latest if fabric is not None else float("-inf")
        iteration_end = t + max(result.max_compute_ns, 0.0, latest) + spec.barrier_ns
        metrics.compute_time_ns += result.max_compute_ns
        metrics.iteration_times_ns.append(iteration_end - t)
        t = iteration_end

    metrics.total_time_ns = t
    if fabric is not None:
        fabric.finalize(metrics, t)
    if packed_messages:
        # One pseudo-sample carrying the exact mean, so
        # ``mean_stores_per_packet`` matches the per-message distribution
        # the DES would have recorded.
        metrics.packets.packed_counts.append(packed_stores / packed_messages)
    metrics.fidelity = "analytical"
    return metrics


class _IterationResult:
    """Everything one resolved iteration contributes to the metrics,
    in time relative to the iteration start (reusable across identical
    iterations)."""

    __slots__ = (
        "useful", "wasted_redundant", "wasted_unread", "overhead",
        "messages", "stores_carried", "by_kind",
        "packed_messages", "packed_stores", "load", "max_compute_ns",
    )

    def __init__(self) -> None:
        self.useful = 0
        self.wasted_redundant = 0
        self.wasted_unread = 0
        self.overhead = 0
        self.messages = 0
        self.stores_carried = 0
        self.by_kind: dict = {}
        self.packed_messages = 0
        self.packed_stores = 0
        self.load = None
        self.max_compute_ns = 0.0

    def fold_into(self, metrics: RunMetrics) -> None:
        b = metrics.bytes
        b.useful += self.useful
        b.wasted_redundant += self.wasted_redundant
        b.wasted_unread += self.wasted_unread
        b.overhead += self.overhead
        p = metrics.packets
        p.messages += self.messages
        p.stores_carried += self.stores_carried
        for kind, n in self.by_kind.items():
            p.by_kind[kind] = p.by_kind.get(kind, 0) + n


def _resolve_iteration(
    name: str,
    params: dict,
    spec,
    protocol: PCIeProtocol,
    fabric: FabricTiming | None,
    iteration,
    consumer_iter,
    gps_tables,
    memo_ctx: tuple | None,
) -> _IterationResult:
    """Resolve one iteration's pair costs, classification and fabric
    load, all in time relative to the iteration start."""
    result = _IterationResult()
    durations = {
        p.gpu: spec.compute.duration_ns(p.work) for p in iteration.phases
    }
    result.max_compute_ns = max(durations.values())
    consumer_reads: dict[int, IntervalSet] = {
        p.gpu: p.reads for p in consumer_iter.phases
    }
    fabric_pairs: list = []
    for phase in iteration.phases:
        src = phase.gpu
        ce = durations[src]
        stats = phase_stats(phase)
        memo_key = None
        entry = None
        if memo_ctx is not None:
            memo_key = (id(stats), *memo_ctx)
            entry = _PAIR_MEMO.get(memo_key)
        if entry is None:
            pair_costs = _phase_pair_costs(
                name, params, spec, protocol, phase, stats, consumer_reads,
                gps_tables,
            )
            # Classification inputs that are pure functions of the
            # phase content: the pair footprint and the delivered
            # unique-byte count.
            footprints = {
                dst: _pair_footprint(stats, phase, dst) for dst in pair_costs
            }
            uniques = {
                dst: c.delivered.total_bytes for dst, c in pair_costs.items()
            }
            # The stats reference pins the object (and its id) for the
            # entry's lifetime.
            entry = (stats, pair_costs, footprints, uniques)
            if memo_key is not None:
                _memo_put(_PAIR_MEMO, _PAIR_MEMO_MAX, memo_key, entry)
        _, pair_costs, footprints, uniques = entry
        if not pair_costs:
            continue
        first_issue, last_issue = _issue_window(
            name, params, 0.0, ce, sum(c.messages for c in pair_costs.values())
        )
        for dst, cost in pair_costs.items():
            reads = consumer_reads.get(dst, IntervalSet.empty())
            footprint = footprints[dst]
            useful = None
            rkey = None
            if memo_ctx is not None:
                rkey = (
                    id(cost.delivered), id(footprint),
                    _column_key(reads.starts), _column_key(reads.ends),
                )
                hit = _CLS_MEMO.get(rkey)
                if hit is not None:
                    useful = hit[2]
            if useful is None:
                useful = _useful_bytes(cost, footprint, reads)
                if rkey is not None:
                    # Pin delivered/footprint so the ids stay valid.
                    _memo_put(
                        _CLS_MEMO, _CLS_MEMO_MAX, rkey,
                        (cost.delivered, footprint, useful),
                    )
            unique = uniques[dst]
            result.useful += useful
            result.wasted_redundant += cost.payload - unique
            result.wasted_unread += unique - useful
            result.overhead += cost.overhead
            result.messages += cost.messages
            result.stores_carried += cost.stores_carried
            for kind, n in cost.by_kind.items():
                result.by_kind[kind] = result.by_kind.get(kind, 0) + n
            result.packed_messages += cost.packed_messages
            result.packed_stores += cost.packed_stores
            if fabric is not None:
                fabric_pairs.append((src, dst, cost, first_issue, last_issue))
    if fabric is not None:
        result.load = fabric.compute_iteration(fabric_pairs)
    return result


def _iteration_key(iteration) -> tuple:
    """Content fingerprint of one iteration (op columns, reads, work).

    Built from the same O(1) sampled column fingerprints as the
    phase-stats memo (see :func:`repro.analytical.stats._column_key`).
    """
    return tuple(
        (
            _phase_key(p),
            float(p.work.flops), float(p.work.dram_bytes),
            _column_key(p.reads.starts), _column_key(p.reads.ends),
        )
        for p in iteration.phases
    )


def _phase_pair_costs(
    name: str,
    params: dict,
    spec,
    protocol: PCIeProtocol,
    phase,
    stats: PhaseStats,
    consumer_reads: dict[int, IntervalSet],
    gps_tables,
) -> dict[int, PairCost]:
    """Per-destination :class:`PairCost` of one phase."""
    out: dict[int, PairCost] = {}
    if name in _DMA_PARADIGMS:
        slices = int(params.get("slices", 4)) if name == "dma_sliced" else 1
        by_dst: dict[int, list] = {}
        for tr in phase.dma:
            by_dst.setdefault(tr.dst, []).append(tr)
        for dst, transfers in by_dst.items():
            cost = dma_cost(protocol, transfers, slices=slices)
            if cost.messages:
                out[dst] = cost
        return out
    if name == "infinite":
        return out

    stores = stats.stores
    if name == "gps":
        stores = _gps_filtered_stores(phase, consumer_reads, params, gps_tables)
    for dst in sorted(set(stores) | set(stats.atomics)):
        st = stores.get(dst)
        at = stats.atomics.get(dst)
        if name == "p2p":
            cost = p2p_cost(protocol, st, at)
        elif name == "wc":
            cost = wc_cost(protocol, st, at)
        elif name == "gps":
            cost = wc_cost(
                protocol, st, at,
                sector_bytes=int(params.get("sector_bytes", 32)),
            )
        else:
            cost = finepack_cost(spec.finepack, protocol, st, at)
        if cost.messages:
            out[dst] = cost
    return out


def _gps_filtered_stores(
    phase, consumer_reads, params: dict, gps_tables
) -> dict[int, DstOps]:
    """Subscription-filtered store columns, split by destination.

    Learned mode drives the real :class:`SubscriptionTable` (one filter
    + learn step per phase invocation, exactly like the DES paradigm);
    oracle mode replicates the read-overlap filter.
    """
    s = phase.stores
    if s.count == 0:
        return {}
    if gps_tables is not None:
        table = gps_tables[phase.gpu]
        keep = table.filter_stores(s.addrs, s.sizes, s.dsts)
        table.learn_epoch(consumer_reads)
    else:
        keep = np.zeros(s.count, dtype=bool)
        for dst in s.destinations():
            reads = consumer_reads.get(dst, IntervalSet.empty())
            if not reads:
                continue
            idx = np.flatnonzero(s.dsts == dst)
            a = s.addrs[idx]
            e = a + s.sizes[idx]
            i = np.searchsorted(reads.starts, e, side="left") - 1
            ok = (i >= 0) & (reads.ends[np.clip(i, 0, None)] > a)
            keep[idx[ok]] = True
    addrs, sizes, dsts = s.addrs[keep], s.sizes[keep], s.dsts[keep]
    out: dict[int, DstOps] = {}
    for dst in np.unique(dsts).tolist():
        idx = np.flatnonzero(dsts == dst)
        out[int(dst)] = DstOps(addrs[idx], sizes[idx])
    return out


def _issue_window(
    name: str, params: dict, t: float, ce: float, n_messages: int
) -> tuple[float, float]:
    """(first, last) message issue time of one phase's traffic.

    Store paradigms spread issues across the kernel with a release
    flush at its end; the DMA family pays the per-call software
    overhead serially after the kernel (after each kernel *slice* for
    ``dma_sliced``, whose engine still ends past kernel end).
    """
    if name in _STORE_PARADIGMS:
        return t, ce
    per_call = float(params.get("per_call_overhead_ns", 5_000.0))
    if name == "dma_sliced":
        slices = int(params.get("slices", 4))
        first = t + (ce - t) / slices + per_call
        last = ce + per_call * -(-n_messages // slices)
        return first, last
    return ce + per_call, ce + per_call * n_messages


def _pair_footprint(stats: PhaseStats, phase, dst: int) -> IntervalSet:
    """Bytes the producer genuinely wrote for ``dst`` this iteration
    (mirrors :meth:`MultiGPUSystem._pair_footprint`, unfiltered)."""
    st = stats.stores.get(dst)
    fp = st.footprint if st is not None else IntervalSet.empty()
    at = stats.atomics.get(dst)
    if at is not None and at.count:
        fp = fp.union(at.footprint)
    staged = [tr for tr in phase.dma if tr.dst == dst and tr.aggregated]
    if staged:
        fp = fp.union(
            IntervalSet.from_ranges(
                [tr.dst_addr for tr in staged],
                [tr.nbytes for tr in staged],
            )
        )
    return fp


def _useful_bytes(
    cost: PairCost, footprint: IntervalSet, reads: IntervalSet
) -> int:
    """Delivered ∩ written ∩ read -- the Figure 10 useful bytes."""
    written = (
        cost.delivered
        if cost.delivered is footprint
        else cost.delivered.intersect(footprint)
    )
    return written.intersect(reads).total_bytes
