"""Topology serialization/hop/drain terms for the analytical tier.

The byte predictions of :mod:`.protocol` are (near-)exact; the timing
terms here are deliberately first-order -- they replace the DES's
per-message event interleaving with per-link *fluid* loads:

* every directed link accumulates the wire bytes of all pairs routed
  over it (routes come from the real :class:`Topology`, so hop counts,
  trunk widths and plane pinning are exact);
* a link finishes an iteration's traffic no earlier than its last
  message is issued and no earlier than it can serialize its total
  load at full rate (``max(last_issue, first_issue + B/bw)``);
* a pair's last delivery adds the per-hop propagation/forwarding pipe
  and a store-and-forward serialization term for the non-bottleneck
  hops, then the receiver drains the last message's payload at HBM
  rate.

This predicts iteration/total times and per-link utilization without
an event loop; it ignores flow-control credits, injected faults and
link error replays (specs carrying those belong at DES fidelity -- the
model layer rejects fault scenarios outright).  The calibration
harness (``tools/calibrate_analytical.py``) tracks the resulting time
error separately from the byte error; see ``docs/analytical.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..registry import RegistryError
from ..registry import topologies as topology_registry
from ..sim.metrics import RunMetrics
from .protocol import PairCost


def build_topology(spec):
    """The spec's :class:`Topology` (``None`` for single-GPU runs).

    Mirrors :meth:`MultiGPUSystem.build` -- same registry resolution,
    same factory arguments -- so routes, link bandwidths and trunk
    widths are identical to what the DES would use.
    """
    if spec.n_gpus <= 1:
        return None
    kind = spec.topology or "single_switch"
    try:
        factory = topology_registry.resolve(kind)
    except RegistryError as exc:
        raise ValueError(str(exc)) from None
    return factory(
        n_gpus=spec.n_gpus,
        generation=spec.generation,
        with_credits=spec.with_credits,
        error_rate=spec.fabric.error_rate,
        **dict(spec.topology_params),
    )


@dataclass
class _LinkLoad:
    """One directed link's traffic within one iteration."""

    wire_bytes: int = 0
    messages: int = 0
    first_issue: float = float("inf")
    last_issue: float = float("-inf")


@dataclass(frozen=True)
class IterationLoad:
    """One iteration's resolved fabric activity, in time *relative to
    the iteration start*.

    Purely a function of the iteration's traffic, not of when the
    iteration begins -- identical steady-state iterations share one
    instance through the model layer's iteration cache.
    """

    #: ``(edge, wire_bytes, messages, serialization_ns)`` per edge.
    edges: tuple
    #: Latest delivery+drain completion (``-inf`` with no traffic).
    rel_latest: float


class FabricTiming:
    """Per-link fluid load accounting across iterations.

    Usage: :meth:`compute_iteration` turns one iteration's (src, dst)
    pair costs -- with issue times relative to the iteration start --
    into an :class:`IterationLoad`; :meth:`apply` folds a load into the
    running totals (possibly repeatedly, for cached iterations);
    :meth:`finalize` fills ``RunMetrics.links``/``link_stats`` exactly
    the way ``_collect_fabric_stats`` does.
    """

    def __init__(self, topology, drain_bytes_per_ns: float) -> None:
        self.topology = topology
        self.drain = drain_bytes_per_ns
        #: edge -> [wire_bytes, messages, busy_time_ns] over the run.
        self._totals: dict[tuple[str, str], list] = {}

    def compute_iteration(self, pairs: list) -> IterationLoad:
        """Resolve ``(src, dst, cost, first_rel, last_rel)`` pairs.

        All times are relative to the iteration start; the whole
        timing model is translation-invariant, so the result shifts
        with the iteration verbatim.
        """
        links = self.topology.links
        loads: dict[tuple[str, str], _LinkLoad] = {}
        recs = []
        for src, dst, cost, first_issue, last_issue in pairs:
            if cost.messages == 0:
                continue
            path = self.topology._path(src, dst)
            edges = list(zip(path, path[1:]))
            for edge in edges:
                load = loads.get(edge)
                if load is None:
                    load = loads[edge] = _LinkLoad()
                load.wire_bytes += cost.wire_bytes
                load.messages += cost.messages
                load.first_issue = min(load.first_issue, first_issue)
                load.last_issue = max(load.last_issue, last_issue)
            recs.append((edges, cost, last_issue))
        # Fluid finish time of each link's aggregate load.
        finish: dict[tuple[str, str], float] = {}
        edge_rows = []
        for edge, load in loads.items():
            serial = load.wire_bytes / links[edge].bytes_per_ns
            finish[edge] = max(load.last_issue, load.first_issue + serial)
            edge_rows.append((edge, load.wire_bytes, load.messages, serial))
        latest = float("-inf")
        for edges, cost, last_issue in recs:
            mean_wire = cost.wire_bytes / cost.messages
            mean_payload = cost.payload / cost.messages
            arrival = max(last_issue, *(finish[e] for e in edges))
            for i, edge in enumerate(edges):
                link = links[edge]
                arrival += link.propagation_ns
                if i > 0:
                    # Store-and-forward of the last message through the
                    # non-bottleneck hops plus switch forwarding.
                    arrival += self.topology.forwarding_ns
                    arrival += mean_wire / link.bytes_per_ns
            arrival += mean_payload / self.drain
            latest = max(latest, arrival)
        return IterationLoad(edges=tuple(edge_rows), rel_latest=latest)

    def apply(self, load: IterationLoad) -> None:
        for edge, wire, msgs, serial in load.edges:
            total = self._totals.get(edge)
            if total is None:
                total = self._totals[edge] = [0, 0, 0.0]
            total[0] += wire
            total[1] += msgs
            total[2] += serial

    def finalize(self, metrics: RunMetrics, total_ns: float) -> None:
        """Fill per-link utilization/stats (every link, traffic or not)."""
        zero_faults = {
            "replays": 0,
            "replay_bytes": 0,
            "replay_saturations": 0,
            "retransmits": 0,
            "fault_stall_ns": 0.0,
        }
        for (a, b) in self.topology.links:
            name = f"{a}->{b}"
            wire, msgs, busy = self._totals.get((a, b), (0, 0, 0.0))
            if total_ns > 0:
                metrics.links.by_link[name] = busy / total_ns
            metrics.link_stats[name] = {
                "messages": msgs,
                "wire_bytes": wire,
                "busy_time_ns": busy,
                "utilization": busy / total_ns if total_ns > 0 else 0.0,
                **zero_faults,
            }
