"""Profiling entry points behind ``repro profile`` and the perf bench.

:func:`profile_run` executes one :class:`~repro.run.spec.RunSpec` with
a :class:`~repro.perf.profiler.StageProfiler` installed and returns the
metrics, the per-stage breakdown and the end-to-end wall clock --
under either the vectorized fast paths (default) or the scalar
reference paths (``scalar=True``), which is how the bench measures the
speedup and how equivalence is demonstrated in the field.

:func:`fingerprint_metrics` hashes a :class:`~repro.sim.metrics.
RunMetrics` (and the order-sensitive structures inside it) into a
stable digest: two runs fingerprint equal iff every float is
bit-identical, every int equal, and every dict in the same insertion
order.  It is the definition of "byte-identical" used by the perf
tests and ``tools/bench_perf.py``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import time
from dataclasses import dataclass

from ..obs.counters import CounterRegistry
from ..run.cache import TraceCache
from ..run.context import RunContext
from ..run.spec import RunSpec
from .config import PerfConfig, perf_overrides
from .profiler import StageProfiler, profiled


def _canon(value):
    """Lossless canonical form: floats as hex, dicts keep their order."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (int, str)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        # A list of pairs, not an object: JSON objects would hide
        # insertion-order differences (by_kind, link_stats).
        return [[_canon(k), _canon(v)] for k, v in value.items()]
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if dataclasses.is_dataclass(value):
        return [
            [f.name, _canon(getattr(value, f.name))]
            for f in dataclasses.fields(value)
        ]
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars
        return _canon(item())
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def fingerprint_metrics(metrics) -> str:
    """A stable digest of a :class:`RunMetrics` (see module docstring)."""
    payload = json.dumps(_canon(metrics), separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class ProfileResult:
    """One profiled run: metrics, stage rows, wall clock, fingerprint."""

    spec: RunSpec
    metrics: object
    profiler: StageProfiler
    wall_ns: int
    scalar: bool

    @property
    def stages(self) -> list[dict[str, float]]:
        return self.profiler.breakdown()

    @property
    def fingerprint(self) -> str:
        return fingerprint_metrics(self.metrics)

    def as_dict(self) -> dict:
        """Machine-readable report (the ``repro profile --json`` body)."""
        return {
            "workload": self.spec.workload,
            "paradigm": self.spec.paradigm,
            "n_gpus": self.spec.n_gpus,
            "iterations": self.spec.iterations,
            "topology": self.spec.topology,
            "topology_params": dict(self.spec.topology_params),
            "mode": "scalar" if self.scalar else "fast",
            "wall_ms": self.wall_ns / 1e6,
            "instrumented_ms": self.profiler.total_ns() / 1e6,
            "stages": self.stages,
            "metrics_fingerprint": self.fingerprint,
            "summary": self.metrics.summary(),
        }


def profile_run(
    spec: RunSpec,
    *,
    scalar: bool = False,
    registry: CounterRegistry | None = None,
    trace_cache: TraceCache | None = None,
) -> ProfileResult:
    """Execute ``spec`` under a stage profiler; returns the breakdown.

    ``scalar=True`` forces every fast path off (the reference
    implementation); the default profiles the vectorized paths.  A
    shared ``trace_cache`` lets callers exclude trace generation from a
    comparison by pre-warming it.
    """
    config = PerfConfig.all_off() if scalar else PerfConfig.all_on()
    profiler = StageProfiler(registry)
    with perf_overrides(config):
        # Build components inside the override so construction-time
        # toggle reads (packetizer, queue partitions, engine) see it.
        ctx = RunContext(spec, trace_cache=trace_cache)
        t0 = time.perf_counter_ns()
        with profiled(profiler):
            metrics = ctx.run()
        wall = time.perf_counter_ns() - t0
    return ProfileResult(
        spec=spec, metrics=metrics, profiler=profiler, wall_ns=wall, scalar=scalar
    )
