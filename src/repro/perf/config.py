"""Process-global fast-path toggles (:class:`PerfConfig`).

The vectorized fast paths change *how* the simulator computes, never
*what* it computes: every toggle here selects between a scalar reference
implementation and a numpy-batched one that is proven byte-identical in
``RunMetrics``/``LinkStats`` (see ``tests/perf/test_equivalence.py``).
Because the toggles cannot affect results, they are deliberately **not**
part of :class:`~repro.run.spec.RunSpec` -- a spec's content hash
addresses *experiments*, and two runs of the same spec with different
perf settings must produce the same bytes.

The active configuration is process-global:

* :func:`get_perf_config` / :func:`set_perf_config` read/replace it;
* :func:`perf_overrides` is a context manager for scoped changes
  (what the equivalence tests and ``repro profile --scalar`` use);
* the ``REPRO_PERF`` environment variable seeds the initial value:
  ``off``/``0``/``scalar`` disables every fast path, a comma list like
  ``vector_rwq=0,batch_events=1`` flips individual toggles.

Worker processes of the parallel executor inherit ``REPRO_PERF``
through the environment, so a sweep forced scalar stays scalar.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace

#: Environment variable seeding the process's initial configuration.
PERF_ENV = "REPRO_PERF"


@dataclass(frozen=True, slots=True)
class PerfConfig:
    """Which vectorized fast paths are active (all on by default).

    Attributes
    ----------
    vector_rwq:
        Bit-arithmetic entry costing in the remote write queue and
        vectorized run extraction in the packetizer (the FinePack
        per-store hot path).
    vector_egress:
        Struct-of-arrays message building for passthrough (p2p) egress:
        a whole phase's stores become one array batch instead of one
        ``WireMessage`` object each.
    vector_transport:
        Bulk link-serialization arithmetic: per-link batched busy
        chains, visited in topological route order with traffic merged
        in global issue order, instead of one discrete event per
        message.  Falls back to the event-driven path whenever a run
        uses tracing, fault injection, flow-control credits, link
        error rates, or (only) a topology whose route adjacency is
        cyclic (see ``repro.perf.transport``).
    batch_events:
        The discrete-event engine drains same-timestamp event runs in
        an inlined loop without per-event dispatch overhead.
    memo_egress:
        Content-addressed per-phase memoization of the FinePack
        packetizer/remote-write-queue: a phase whose op columns
        (addresses, sizes, destinations, atomic flags) were already
        packetized this run replays the recorded messages and stats
        with fresh issue times instead of re-packetizing from scratch
        (see ``FinePackEgress.phase_ops``).
    """

    vector_rwq: bool = True
    vector_egress: bool = True
    vector_transport: bool = True
    batch_events: bool = True
    memo_egress: bool = True

    @classmethod
    def all_on(cls) -> "PerfConfig":
        return cls()

    @classmethod
    def all_off(cls) -> "PerfConfig":
        """The scalar reference configuration."""
        return cls(
            vector_rwq=False,
            vector_egress=False,
            vector_transport=False,
            batch_events=False,
            memo_egress=False,
        )

    @classmethod
    def from_env(cls, value: str | None = None) -> "PerfConfig":
        """Parse ``$REPRO_PERF`` (or an explicit string) into a config.

        ``""``/unset -> all on; ``off``/``0``/``false``/``scalar`` ->
        all off; otherwise a comma-separated ``name=0|1`` list applied
        on top of the all-on default.
        """
        raw = os.environ.get(PERF_ENV, "") if value is None else value
        raw = raw.strip().lower()
        if not raw or raw in ("on", "1", "true", "fast"):
            return cls.all_on()
        if raw in ("off", "0", "false", "scalar"):
            return cls.all_off()
        known = {f.name for f in fields(cls)}
        overrides: dict[str, bool] = {}
        for item in raw.split(","):
            name, _, flag = item.strip().partition("=")
            if name not in known:
                raise ValueError(
                    f"unknown {PERF_ENV} toggle {name!r}; known: {sorted(known)}"
                )
            overrides[name] = flag.strip() in ("", "1", "true", "on")
        return replace(cls.all_on(), **overrides)

    def as_dict(self) -> dict[str, bool]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


_active: PerfConfig = PerfConfig.from_env()


def get_perf_config() -> PerfConfig:
    """The process's active fast-path configuration."""
    return _active


def set_perf_config(config: PerfConfig) -> PerfConfig:
    """Replace the active configuration; returns the previous one."""
    global _active
    if not isinstance(config, PerfConfig):
        raise TypeError(f"expected PerfConfig, got {type(config).__name__}")
    previous = _active
    _active = config
    return previous


@contextmanager
def perf_overrides(config: PerfConfig | None = None, **toggles: bool):
    """Scoped configuration override.

    Pass a full :class:`PerfConfig` or individual keyword toggles
    (applied on top of the current configuration)::

        with perf_overrides(PerfConfig.all_off()):
            reference = ctx.run()
        with perf_overrides(vector_rwq=False):
            ...
    """
    if config is None:
        config = replace(_active, **toggles)
    elif toggles:
        raise TypeError("pass either a PerfConfig or keyword toggles, not both")
    previous = set_perf_config(config)
    try:
        yield config
    finally:
        set_perf_config(previous)
