"""Hot-path acceleration: perf toggles, stage profiler, fast paths.

Three pieces (see ``docs/performance.md``):

* :class:`PerfConfig` -- process-global toggles selecting the
  numpy-vectorized fast paths; all on by default, every one proven
  byte-identical to its scalar reference path.
* :class:`StageProfiler` / :func:`profiled` -- wall-clock attribution
  to named simulator stages, driving ``repro profile``.
* The batch machinery itself lives in :mod:`repro.perf.batch` and
  :mod:`repro.perf.transport`, and the profiling entry points in
  :mod:`repro.perf.harness`; they are imported explicitly by their
  callers (not re-exported here) to keep this package importable from
  the innermost simulator modules without cycles.
"""

from .config import (
    PERF_ENV,
    PerfConfig,
    get_perf_config,
    perf_overrides,
    set_perf_config,
)
from .profiler import STAGES, StageProfiler, profiled

__all__ = [
    "PERF_ENV",
    "PerfConfig",
    "get_perf_config",
    "set_perf_config",
    "perf_overrides",
    "STAGES",
    "StageProfiler",
    "profiled",
]
