"""Stage-attributed wall-clock profiling (``repro profile``).

The :class:`StageProfiler` attributes host wall-clock time to named
simulator stages -- trace generation, the warp coalescer, egress
engines, the packetizer/remote-write-queue, link serialization, ingress
draining, engine dispatch, metrics classification.  Attribution is
*exclusive*: while a nested stage is open, time accrues to the
innermost stage only, so the per-stage numbers sum to the instrumented
total without double counting.

Accumulation lands in a :class:`~repro.obs.counters.CounterRegistry`
(``perf.stage.<name>.ns`` / ``perf.stage.<name>.calls``), the same
aggregate surface the observability layer samples, so profiles export
anywhere counters already do.

Instrumented call sites check the module-global :data:`ACTIVE` slot --
a single attribute load and ``None`` test when profiling is off, the
same zero-overhead-when-disabled discipline the tracer hooks use.
Activate with :func:`profiled`::

    profiler = StageProfiler()
    with profiled(profiler):
        ctx.run()
    print(profiler.report())
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from ..obs.counters import CounterRegistry

#: Canonical stage names, in pipeline order (used to sort reports).
STAGES = (
    "trace_generation",
    "coalescer",
    "egress",
    "packetizer_rwq",
    "link_serialization",
    "ingress_drain",
    "engine_dispatch",
    "metrics_classify",
)

#: The process's active profiler, or ``None`` (the common case).
#: Hot call sites read this attribute directly.
ACTIVE: "StageProfiler | None" = None


class StageProfiler:
    """Accumulates exclusive wall-clock time per named stage.

    ``registry`` defaults to a private
    :class:`~repro.obs.counters.CounterRegistry`; pass a shared one to
    merge profile counters with other observability counters.
    """

    def __init__(self, registry: CounterRegistry | None = None) -> None:
        self.registry = registry if registry is not None else CounterRegistry()
        self._stack: list[str] = []
        self._mark = 0
        self._clock = time.perf_counter_ns

    # -- hot path ---------------------------------------------------

    def begin(self, name: str) -> None:
        """Enter ``name``; charges elapsed time to the enclosing stage."""
        now = self._clock()
        if self._stack:
            self.registry.counter(f"perf.stage.{self._stack[-1]}.ns").inc(
                now - self._mark
            )
        self._stack.append(name)
        self.registry.counter(f"perf.stage.{name}.calls").inc()
        self._mark = self._clock()

    def end(self) -> None:
        """Leave the innermost stage, charging it the elapsed time."""
        now = self._clock()
        name = self._stack.pop()
        self.registry.counter(f"perf.stage.{name}.ns").inc(now - self._mark)
        self._mark = self._clock()

    @contextmanager
    def stage(self, name: str):
        self.begin(name)
        try:
            yield self
        finally:
            self.end()

    # -- reporting --------------------------------------------------

    def stage_ns(self) -> dict[str, float]:
        """``{stage: exclusive ns}`` in pipeline-then-name order."""
        out: dict[str, float] = {}
        seen = set()
        counters = self.registry.counters
        for name in STAGES:
            key = f"perf.stage.{name}.ns"
            if key in counters:
                out[name] = counters[key].value
                seen.add(name)
        for key in sorted(counters):
            if key.startswith("perf.stage.") and key.endswith(".ns"):
                name = key[len("perf.stage.") : -len(".ns")]
                if name not in seen:
                    out[name] = counters[key].value
        return out

    def stage_calls(self) -> dict[str, float]:
        return {
            name: self.registry.counters.get(
                f"perf.stage.{name}.calls", _ZERO
            ).value
            for name in self.stage_ns()
        }

    def breakdown(self) -> list[dict[str, float]]:
        """Machine-readable per-stage rows (ns, calls, share of total)."""
        ns = self.stage_ns()
        calls = self.stage_calls()
        total = sum(ns.values())
        return [
            {
                "stage": name,
                "ns": ns[name],
                "calls": calls[name],
                "share": ns[name] / total if total else 0.0,
            }
            for name in ns
        ]

    def total_ns(self) -> float:
        return sum(self.stage_ns().values())

    def report(self) -> str:
        """A human-readable stage table."""
        rows = self.breakdown()
        if not rows:
            return "no stages recorded"
        width = max(len(r["stage"]) for r in rows)
        lines = [f"{'stage':<{width}}  {'ms':>10}  {'share':>6}  {'calls':>9}"]
        for r in rows:
            lines.append(
                f"{r['stage']:<{width}}  {r['ns'] / 1e6:>10.2f}  "
                f"{r['share']:>6.1%}  {int(r['calls']):>9}"
            )
        lines.append(
            f"{'(instrumented total)':<{width}}  {self.total_ns() / 1e6:>10.2f}"
        )
        return "\n".join(lines)


class _Zero:
    value = 0.0


_ZERO = _Zero()


@contextmanager
def profiled(profiler: StageProfiler):
    """Install ``profiler`` as the process-global :data:`ACTIVE` one."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a StageProfiler is already active")
    ACTIVE = profiler
    profiler._mark = profiler._clock()
    try:
        yield profiler
    finally:
        ACTIVE = None
