"""Struct-of-arrays message batches and bit-mask vectorization helpers.

The scalar simulator materializes one :class:`WireMessage` object per
transaction; for the store-based paradigms that is hundreds of
thousands of allocations per iteration and the single largest p2p cost.
A :class:`MessageBatch` carries the same per-message fields as parallel
numpy arrays -- one batch per (phase, egress engine) -- and the batch
transport layer (:mod:`repro.perf.transport`) consumes it without ever
constructing the objects.

:func:`masks_to_runs` is the shared vectorized replacement for
:meth:`QueueEntry.runs`: it extracts every maximal contiguous run of
enabled bytes from a whole window's worth of byte-enable masks in one
``unpackbits`` + ``diff`` pass, in exactly the (entry order, ascending
start) order the scalar loop produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..interconnect.message import KIND_CODES, KINDS_BY_CODE, MessageKind, WireMessage

STORE_CODE = KIND_CODES[MessageKind.STORE]
ATOMIC_CODE = KIND_CODES[MessageKind.ATOMIC]
FINEPACK_CODE = KIND_CODES[MessageKind.FINEPACK]

#: Codes of the kinds whose ``stores_packed`` feeds
#: :attr:`PacketStats.packed_counts` (mirrors ``PacketStats.record``).
PACKED_KIND_CODES = np.asarray(
    sorted(
        KIND_CODES[k]
        for k in (
            MessageKind.FINEPACK,
            MessageKind.STORE,
            MessageKind.COMBINED_STORE,
        )
    ),
    dtype=np.uint8,
)


@dataclass(slots=True)
class MessageBatch:
    """One egress engine's messages for one phase, as parallel arrays.

    Semantically equivalent to the ``list[WireMessage]`` a scalar
    engine emits for the same ops, under two restrictions that hold for
    the passthrough (p2p) engine: all messages share one source GPU,
    and each message delivers exactly one contiguous byte range
    (``starts[i]``/``lengths[i]``, the array form of ``meta["range1"]``).
    """

    src: int
    dst: np.ndarray  # int64 destination GPU per message
    payload: np.ndarray  # int64 payload bytes
    overhead: np.ndarray  # int64 protocol overhead bytes
    kind: np.ndarray  # uint8 KIND_CODES values
    issue: np.ndarray  # float64 issue times
    packed: np.ndarray  # int64 stores_packed
    starts: np.ndarray  # int64 delivered range start (one per message)
    lengths: np.ndarray  # int64 delivered range length

    def __len__(self) -> int:
        return self.dst.size

    @property
    def wire(self) -> np.ndarray:
        return self.payload + self.overhead

    def to_messages(self) -> list[WireMessage]:
        """Materialize the equivalent scalar :class:`WireMessage` list."""
        src = self.src
        return [
            WireMessage(
                src=src,
                dst=d,
                payload_bytes=p,
                overhead_bytes=o,
                kind=KINDS_BY_CODE[k],
                issue_time=t,
                stores_packed=n,
                meta={"range1": (a, ln)},
            )
            for d, p, o, k, t, n, a, ln in zip(
                self.dst.tolist(),
                self.payload.tolist(),
                self.overhead.tolist(),
                self.kind.tolist(),
                self.issue.tolist(),
                self.packed.tolist(),
                self.starts.tolist(),
                self.lengths.tolist(),
            )
        ]


def arrays_from_messages(
    msgs: list[WireMessage],
) -> tuple[np.ndarray, ...]:
    """Flatten a message list into transport-layer parallel arrays.

    Returns ``(src, dst, payload, overhead, kind, issue, packed)``; the
    caller keeps the original list for fields the arrays do not carry
    (``meta``).
    """
    n = len(msgs)
    src = np.empty(n, dtype=np.int64)
    dst = np.empty(n, dtype=np.int64)
    payload = np.empty(n, dtype=np.int64)
    overhead = np.empty(n, dtype=np.int64)
    kind = np.empty(n, dtype=np.uint8)
    issue = np.empty(n, dtype=np.float64)
    packed = np.empty(n, dtype=np.int64)
    for i, m in enumerate(msgs):
        src[i] = m.src
        dst[i] = m.dst
        payload[i] = m.payload_bytes
        overhead[i] = m.overhead_bytes
        kind[i] = KIND_CODES[m.kind]
        issue[i] = m.issue_time
        packed[i] = m.stores_packed
    return src, dst, payload, overhead, kind, issue, packed


def masks_to_runs(
    masks: list[int], entry_bytes: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized run extraction over many byte-enable masks.

    Parameters
    ----------
    masks:
        One ``entry_bytes``-bit enable mask per queue entry (bit ``i``
        set means byte ``i`` is valid).  ``entry_bytes`` must be a
        multiple of 8 (callers fall back to the scalar loop otherwise).

    Returns
    -------
    (entry_index, start, length) int64 arrays, one element per maximal
    contiguous run, ordered by (entry, ascending start) -- the order
    ``QueueEntry.runs`` yields entry by entry.
    """
    if entry_bytes % 8:
        raise ValueError(f"entry_bytes must be a multiple of 8: {entry_bytes}")
    n = len(masks)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    nbytes = entry_bytes // 8
    buf = b"".join(m.to_bytes(nbytes, "little") for m in masks)
    bits = np.unpackbits(
        np.frombuffer(buf, dtype=np.uint8).reshape(n, nbytes),
        axis=1,
        bitorder="little",
    )
    # Zero-pad each row on both sides so diff marks run starts (+1) and
    # one-past-run-ends (-1) even at the row edges.
    padded = np.zeros((n, entry_bytes + 2), dtype=np.int8)
    padded[:, 1:-1] = bits
    deltas = np.diff(padded, axis=1).ravel()
    run_starts = np.flatnonzero(deltas == 1)
    run_ends = np.flatnonzero(deltas == -1)
    # Starts and ends alternate within each row and rows hold balanced
    # pairs, so the i-th start matches the i-th end globally; the row
    # offsets cancel in the subtraction.
    width = entry_bytes + 1
    entry_idx = run_starts // width
    starts = run_starts % width
    lengths = run_ends - run_starts
    return entry_idx.astype(np.int64), starts.astype(np.int64), lengths.astype(np.int64)
