"""Batch transport: bulk link serialization without per-message events.

The scalar system schedules one discrete event per message; each event
routes its message hop by hop through :meth:`Link.transmit`.  That is
byte-exact but pays Python dispatch per message.  This module computes
the *same* timings with per-link batched arithmetic.

The key observation is that the scalar engine walks a message's *whole*
route inside its single issue event: ``Topology.route`` is called at
the message's issue time and hands the message to every link on the
path before the next event runs.  Per directed link, the scalar call
order is therefore the **global issue order** of the messages crossing
it -- not their arrival order at that link.  The batch path reproduces
exactly that:

1. All of an iteration's messages are flattened into parallel arrays
   and stable-sorted by issue time (preserving scheduling order for
   ties -- exactly the engine's ``(time, seq)`` ordering).
2. :func:`build_plan` records every pair route and orders the directed
   links *topologically* over the route-adjacency DAG (link ``P``
   precedes link ``L`` whenever ``P`` immediately precedes ``L`` on
   some route).  For trees and meshes this DAG is acyclic: up-edges
   sort by ascending level, down-edges by descending level.
3. :func:`transmit_flat` visits each used link once, in that order,
   calling :meth:`Link.transmit_batch` with the link's messages merged
   in ascending flat index -- i.e. global issue order.  Messages at
   hop position > 0 on a link first gain ``forwarding_ns``
   element-wise, the same float addition the scalar route performs.

Because every predecessor link on a message's route has been fully
processed before its next link runs, each ``transmit_batch`` sees the
same ready times, in the same call order, as the scalar engine -- for
*any* topology whose route adjacency is acyclic, including multi-level
fat trees where a leaf link serves hop 1 for intra-leaf traffic and
hop 3 for cross-leaf traffic.  ``build_plan`` returns ``None`` (and
the system falls back to the event-driven path) only when the
adjacency graph genuinely contains a cycle.

Equally, anything that makes per-message transmission stateful beyond
the busy-time chain -- flow-control credits, armed fault schedules,
error-rate replay RNGs, tracers -- disqualifies the batch path; see
:func:`links_eligible`.  The float arithmetic inside the batch is
element-for-element the scalar arithmetic (the per-link busy chain
stays a sequential loop), so results are byte-identical, not just
close.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .batch import FINEPACK_CODE, KINDS_BY_CODE, PACKED_KIND_CODES

Edge = tuple[str, str]

#: O(1) membership test for "kinds that carry packed stores", indexed
#: by the uint8 kind code (hoisted out of :func:`drain_and_record`).
_PACKED_KIND_LUT = np.zeros(256, dtype=bool)
_PACKED_KIND_LUT[PACKED_KIND_CODES] = True


def links_eligible(topology) -> bool:
    """Whether every link can be timed by the pure busy-chain model."""
    for link in topology.links.values():
        if (
            link.credits is not None
            or link.fault_state is not None
            or link.tracer is not None
            or link._rng is not None
        ):
            return False
    return True


@dataclass(frozen=True)
class TransportPlan:
    """Static per-topology routing for the batch transport.

    Attributes
    ----------
    routes:
        Fault-free route (directed edge tuple) per ordered GPU pair.
    link_order:
        Every directed link appearing in a route, topologically ordered
        over the route-adjacency DAG: by the time a link is processed,
        every link feeding into it on any route is already done.
    hop_disjoint:
        True when no link serves two different hop positions (the old,
        stricter eligibility criterion); kept for introspection --
        hop-overlapping topologies like ``fat_tree`` run the same
        event-ordered schedule.
    """

    routes: dict[tuple[int, int], tuple[Edge, ...]]
    link_order: tuple[Edge, ...]
    hop_disjoint: bool


def build_plan(topology) -> TransportPlan | None:
    """Routes plus a topological link order, or ``None`` on a cycle.

    The only structural reason to refuse is a cycle in the
    route-adjacency graph (link A immediately before B on one route
    and B before A on another) -- impossible for tree and mesh
    topologies, where up-edges order by ascending level and down-edges
    by descending level.
    """
    routes: dict[tuple[int, int], tuple[Edge, ...]] = {}
    hop_of_link: dict[Edge, int] = {}
    hop_disjoint = True
    # Successors in first-seen order (dict, not set: deterministic
    # iteration) and in-degrees for Kahn's algorithm.
    succ: dict[Edge, dict[Edge, None]] = {}
    indeg: dict[Edge, int] = {}
    for s in range(topology.n_gpus):
        for d in range(topology.n_gpus):
            if s == d:
                continue
            nodes = topology._path(s, d)
            edges = tuple(zip(nodes, nodes[1:]))
            routes[(s, d)] = edges
            for hop, edge in enumerate(edges):
                if hop_of_link.setdefault(edge, hop) != hop:
                    hop_disjoint = False
                indeg.setdefault(edge, 0)
                succ.setdefault(edge, {})
            for prev, nxt in zip(edges, edges[1:]):
                if nxt not in succ[prev]:
                    succ[prev][nxt] = None
                    indeg[nxt] += 1
    queue = deque(e for e, deg in indeg.items() if deg == 0)
    order: list[Edge] = []
    while queue:
        edge = queue.popleft()
        order.append(edge)
        for nxt in succ[edge]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    if len(order) != len(indeg):
        # Route adjacency contains a cycle: no link order can reproduce
        # the scalar interleaving in one pass per link.
        return None
    return TransportPlan(
        routes=routes, link_order=tuple(order), hop_disjoint=hop_disjoint
    )


def transmit_flat(
    topology,
    plan: TransportPlan,
    src: np.ndarray,
    dst: np.ndarray,
    issue: np.ndarray,
    wire: np.ndarray,
    payload: np.ndarray,
    overhead: np.ndarray,
    packed: np.ndarray,
    kinds: np.ndarray,
) -> np.ndarray:
    """Serialize pre-sorted messages through the fabric; returns
    delivery times aligned with the inputs.

    All arrays must already be in global issue order (stable-sorted by
    issue time) -- the order the scalar engine would process them.
    Each used link is visited once, in the plan's topological order,
    with its messages merged in ascending flat index (= issue order);
    see the module docstring for why that reproduces the scalar
    engine's per-link call sequence exactly.
    """
    ready = np.array(issue, dtype=np.float64, copy=True)
    if ready.size == 0:
        return ready
    if bool((src == dst).any()):
        # Match Topology.route's contract for self-traffic.
        raise ValueError("local traffic must not enter the interconnect")
    n_gpus = topology.n_gpus
    keys = src * n_gpus + dst
    # Per-link segments: (indices, hop position on that route).  A
    # message crosses a given link at most once (routes are simple
    # paths), so the merged indices below are unique.
    by_link: dict[Edge, list[tuple[np.ndarray, int]]] = {}
    for key in np.unique(keys).tolist():
        s, d = divmod(key, n_gpus)
        idx = np.flatnonzero(keys == key)
        for hop, edge in enumerate(plan.routes[(s, d)]):
            by_link.setdefault(edge, []).append((idx, hop))
    forwarding = topology.forwarding_ns
    for edge in plan.link_order:
        parts = by_link.get(edge)
        if parts is None:
            continue
        # Switch forwarding is charged per hop > 0 *before* the link
        # transmit, exactly like the scalar Topology.route.
        for idx, hop in parts:
            if hop > 0:
                ready[idx] += forwarding
        if len(parts) == 1:
            idx = parts[0][0]
        else:
            # Merged ascending indices == global issue order, which is
            # the order the scalar engine calls this link in.
            idx = np.sort(np.concatenate([p[0] for p in parts]))
        ready[idx] = topology.links[edge].transmit_batch(
            ready[idx],
            wire[idx],
            payload[idx],
            overhead[idx],
            packed[idx],
            kinds[idx],
        )
    return ready


def drain_and_record(
    deliveries: np.ndarray,
    dst: np.ndarray,
    payload: np.ndarray,
    packed: np.ndarray,
    kinds: np.ndarray,
    order: np.ndarray,
    obj_refs: list,
    depacketizers: list,
    drain_rates: np.ndarray,
    packets,
) -> float:
    """Ingress-drain every delivered message and fold packet stats.

    Arrays are in global issue order; ``order`` maps each position back
    to its original (pre-sort) flat index so FinePack messages can look
    up their packet object in ``obj_refs``.  Returns the latest drain
    completion time (``-inf`` when there are no messages).  Mirrors the
    scalar ``inject`` path: FinePack packets pass the destination
    de-packetizer's bounded buffer in issue order; everything else
    drains at the destination HBM rate; ``packets.record`` side effects
    are reproduced in the same order.
    """
    n = deliveries.size
    if n == 0:
        return float("-inf")
    latest = float("-inf")
    finepack = kinds == FINEPACK_CODE
    nonfp = np.flatnonzero(~finepack)
    if nonfp.size:
        drained = deliveries[nonfp] + payload[nonfp] / drain_rates[dst[nonfp]]
        latest = float(drained.max())
    for pos in np.flatnonzero(finepack).tolist():
        msg = obj_refs[int(order[pos])]
        done = depacketizers[int(dst[pos])].admit(
            msg.meta["packet"], float(deliveries[pos])
        )
        if done > latest:
            latest = float(done)
    # PacketStats.record equivalents, preserving issue order where the
    # scalar structures are order-sensitive (by_kind first-seen order,
    # packed_counts sequence).
    packets.messages += n
    packets.stores_carried += int(packed.sum())
    codes, first_seen, counts = np.unique(
        kinds, return_index=True, return_counts=True
    )
    for i in np.argsort(first_seen, kind="stable").tolist():
        kind = KINDS_BY_CODE[int(codes[i])]
        packets.by_kind[kind] = packets.by_kind.get(kind, 0) + int(counts[i])
    packs = packed[_PACKED_KIND_LUT[kinds]]
    if packs.size:
        packets.packed_counts.extend(packs.tolist())
    return latest
