"""Batch transport: bulk link serialization without per-message events.

The scalar system schedules one discrete event per message; each event
routes its message hop by hop through :meth:`Link.transmit`.  That is
byte-exact but pays Python dispatch per message.  This module computes
the *same* timings with per-link batched arithmetic:

1. All of an iteration's messages are flattened into parallel arrays
   and sorted by issue time (stable, preserving scheduling order for
   ties -- exactly the engine's ``(time, seq)`` ordering).
2. Messages advance hop position by hop position; at each hop the
   messages crossing a given link are handed to
   :meth:`Link.transmit_batch` together, in global issue order.

Step 2 reproduces the scalar per-link call order only when no link is
used at two different hop positions: the scalar engine interleaves
*all* traffic in issue order, so a link serving hop 0 for one GPU pair
and hop 2 for another would see its calls interleaved, not phased.
:func:`build_plan` therefore verifies the topology's routes are
hop-position-disjoint and the system falls back to the event-driven
path otherwise (e.g. the two-level tree, where a GPU's ingress link is
hop 1 for intra-leaf traffic but hop 3 for cross-leaf traffic).

Equally, anything that makes per-message transmission stateful beyond
the busy-time chain -- flow-control credits, armed fault schedules,
error-rate replay RNGs, tracers -- disqualifies the batch path; see
:func:`links_eligible`.  The float arithmetic inside the batch is
element-for-element the scalar arithmetic (the per-link busy chain
stays a sequential loop), so results are byte-identical, not just
close.
"""

from __future__ import annotations

import numpy as np

from .batch import FINEPACK_CODE, KINDS_BY_CODE, PACKED_KIND_CODES

Edge = tuple[str, str]


def links_eligible(topology) -> bool:
    """Whether every link can be timed by the pure busy-chain model."""
    for link in topology.links.values():
        if (
            link.credits is not None
            or link.fault_state is not None
            or link.tracer is not None
            or link._rng is not None
        ):
            return False
    return True


def build_plan(topology) -> dict[tuple[int, int], tuple[Edge, ...]] | None:
    """Fault-free route (edge list) per GPU pair, or ``None``.

    Returns ``None`` when any link appears at two different hop
    positions across the pair routes (see module docstring).
    """
    plan: dict[tuple[int, int], tuple[Edge, ...]] = {}
    hop_of_link: dict[Edge, int] = {}
    for s in range(topology.n_gpus):
        for d in range(topology.n_gpus):
            if s == d:
                continue
            nodes = topology._path(s, d)
            edges = tuple(zip(nodes, nodes[1:]))
            for hop, edge in enumerate(edges):
                if hop_of_link.setdefault(edge, hop) != hop:
                    return None
            plan[(s, d)] = edges
    return plan


def transmit_flat(
    topology,
    plan: dict[tuple[int, int], tuple[Edge, ...]],
    src: np.ndarray,
    dst: np.ndarray,
    issue: np.ndarray,
    wire: np.ndarray,
    payload: np.ndarray,
    overhead: np.ndarray,
    packed: np.ndarray,
    kinds: np.ndarray,
) -> np.ndarray:
    """Serialize pre-sorted messages through the fabric; returns
    delivery times aligned with the inputs.

    All arrays must already be in global issue order (stable-sorted by
    issue time) -- the order the scalar engine would process them.
    """
    ready = np.array(issue, dtype=np.float64, copy=True)
    if ready.size == 0:
        return ready
    if bool((src == dst).any()):
        # Match Topology.route's contract for self-traffic.
        raise ValueError("local traffic must not enter the interconnect")
    n_gpus = topology.n_gpus
    keys = src * n_gpus + dst
    groups: list[tuple[tuple[Edge, ...], np.ndarray]] = []
    max_hops = 0
    for key in np.unique(keys).tolist():
        s, d = divmod(key, n_gpus)
        edges = plan[(s, d)]
        groups.append((edges, np.flatnonzero(keys == key)))
        max_hops = max(max_hops, len(edges))
    forwarding = topology.forwarding_ns
    for hop in range(max_hops):
        by_link: dict[Edge, list[np.ndarray]] = {}
        for edges, idx in groups:
            if len(edges) > hop:
                if hop > 0:
                    ready[idx] += forwarding
                by_link.setdefault(edges[hop], []).append(idx)
        for edge, parts in by_link.items():
            # Merged ascending indices == global issue order, which is
            # the order the scalar engine calls this link in.
            idx = parts[0] if len(parts) == 1 else np.sort(np.concatenate(parts))
            ready[idx] = topology.links[edge].transmit_batch(
                ready[idx],
                wire[idx],
                payload[idx],
                overhead[idx],
                packed[idx],
                kinds[idx],
            )
    return ready


def drain_and_record(
    deliveries: np.ndarray,
    dst: np.ndarray,
    payload: np.ndarray,
    packed: np.ndarray,
    kinds: np.ndarray,
    order: np.ndarray,
    obj_refs: list,
    depacketizers: list,
    drain_rates: np.ndarray,
    packets,
) -> float:
    """Ingress-drain every delivered message and fold packet stats.

    Arrays are in global issue order; ``order`` maps each position back
    to its original (pre-sort) flat index so FinePack messages can look
    up their packet object in ``obj_refs``.  Returns the latest drain
    completion time (``-inf`` when there are no messages).  Mirrors the
    scalar ``inject`` path: FinePack packets pass the destination
    de-packetizer's bounded buffer in issue order; everything else
    drains at the destination HBM rate; ``packets.record`` side effects
    are reproduced in the same order.
    """
    n = deliveries.size
    if n == 0:
        return float("-inf")
    latest = float("-inf")
    finepack = kinds == FINEPACK_CODE
    nonfp = np.flatnonzero(~finepack)
    if nonfp.size:
        drained = deliveries[nonfp] + payload[nonfp] / drain_rates[dst[nonfp]]
        latest = float(drained.max())
    for pos in np.flatnonzero(finepack).tolist():
        msg = obj_refs[int(order[pos])]
        done = depacketizers[int(dst[pos])].admit(
            msg.meta["packet"], float(deliveries[pos])
        )
        if done > latest:
            latest = float(done)
    # PacketStats.record equivalents, preserving issue order where the
    # scalar structures are order-sensitive (by_kind first-seen order,
    # packed_counts sequence).
    packets.messages += n
    packets.stores_carried += int(packed.sum())
    codes, first_seen, counts = np.unique(
        kinds, return_index=True, return_counts=True
    )
    for i in np.argsort(first_seen, kind="stable").tolist():
        kind = KINDS_BY_CODE[int(codes[i])]
        packets.by_kind[kind] = packets.by_kind.get(kind, 0) + int(counts[i])
    packs = packed[np.isin(kinds, PACKED_KIND_CODES)]
    if packs.size:
        packets.packed_counts.extend(packs.tolist())
    return latest
