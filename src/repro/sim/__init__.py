"""Simulation layer: discrete-event engine, byte-accounting metrics,
communication paradigms, the multi-GPU system, and experiment runners."""

from .engine import Engine
from .metrics import (
    ByteBreakdown,
    LinkUtilization,
    PacketStats,
    RunMetrics,
    classify_messages,
)
from .replay import EventReplaySession, ReplayError, ReplayReport, phase_events
from .sweep import SweepPoint, SweepResult, generation_sweep, single_gpu_time, sweep
from .timeline import render_comparison, render_timeline
from .validation import ValidationError, ValidationReport, validate
from .gps import SubscriptionStats, SubscriptionTable
from .paradigms import (
    PARADIGMS,
    BulkDMAParadigm,
    FinePackParadigm,
    GPSParadigm,
    InfiniteBandwidthParadigm,
    P2PStoreParadigm,
    Paradigm,
    SlicedDMAParadigm,
    WriteCombiningParadigm,
    make_paradigm,
)
from .runner import (
    FIGURE9_PARADIGMS,
    ComparisonResult,
    ExperimentConfig,
    build_system,
    compare_paradigms,
    geomean,
    run_workload,
)
from .system import MultiGPUSystem

__all__ = [
    "Engine",
    "ByteBreakdown",
    "LinkUtilization",
    "EventReplaySession",
    "ReplayError",
    "ReplayReport",
    "phase_events",
    "SweepPoint",
    "SweepResult",
    "generation_sweep",
    "single_gpu_time",
    "sweep",
    "render_comparison",
    "render_timeline",
    "ValidationError",
    "ValidationReport",
    "validate",
    "PacketStats",
    "RunMetrics",
    "classify_messages",
    "PARADIGMS",
    "BulkDMAParadigm",
    "FinePackParadigm",
    "GPSParadigm",
    "InfiniteBandwidthParadigm",
    "P2PStoreParadigm",
    "Paradigm",
    "SlicedDMAParadigm",
    "SubscriptionStats",
    "SubscriptionTable",
    "WriteCombiningParadigm",
    "make_paradigm",
    "FIGURE9_PARADIGMS",
    "ComparisonResult",
    "ExperimentConfig",
    "build_system",
    "compare_paradigms",
    "geomean",
    "run_workload",
    "MultiGPUSystem",
]
