"""Byte-accounting ledger and run metrics (paper Figure 10/11 inputs).

Every payload byte that crosses the interconnect is classified as

* **useful** -- it carries a final value (not later overwritten before
  the consumer synchronizes) that the destination GPU actually reads;
* **wasted (redundant)** -- a value overwritten by a later store to the
  same address before the consumer could read it;
* **wasted (unread)** -- delivered but never read by the destination
  (over-transfer: untouched bytes in a DMA region or a GPS cacheline);
* protocol **overhead** bytes are accounted separately from payload.

Classification is interval arithmetic: delivered ranges vs. the
producer's final-value footprint vs. the consumer's read set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..interconnect.message import MessageKind, WireMessage
from ..trace.intervals import IntervalSet


@dataclass
class ByteBreakdown:
    """The Figure 10 byte categories."""

    useful: int = 0
    wasted_redundant: int = 0
    wasted_unread: int = 0
    overhead: int = 0

    @property
    def wasted(self) -> int:
        return self.wasted_redundant + self.wasted_unread

    @property
    def payload(self) -> int:
        return self.useful + self.wasted

    @property
    def total(self) -> int:
        return self.payload + self.overhead

    def add(self, other: "ByteBreakdown") -> None:
        self.useful += other.useful
        self.wasted_redundant += other.wasted_redundant
        self.wasted_unread += other.wasted_unread
        self.overhead += other.overhead

    def as_dict(self) -> dict[str, int]:
        return {
            "useful": self.useful,
            "wasted_redundant": self.wasted_redundant,
            "wasted_unread": self.wasted_unread,
            "overhead": self.overhead,
            "total": self.total,
        }


def classify_messages(
    messages: list[WireMessage],
    final_footprint: IntervalSet,
    read_set: IntervalSet,
) -> ByteBreakdown:
    """Classify one (src, dst, iteration) group of messages.

    Parameters
    ----------
    messages:
        All messages the source sent to this destination during the
        iteration; each must carry ``meta["ranges"]``.
    final_footprint:
        Union of bytes the producer stored this iteration -- bytes
        outside it were never updated (DMA/GPS over-transfer).
    read_set:
        Bytes the destination reads when it consumes this data.
    """
    breakdown = ByteBreakdown()
    if not messages:
        return breakdown
    # Single-range messages carry a scalar (addr, size) annotation
    # ("range1"); packed messages carry ("ranges") array pairs.  The
    # scalar path avoids one numpy array pair per store message.
    single_starts: list[int] = []
    single_lens: list[int] = []
    starts_parts: list[np.ndarray] = []
    lens_parts: list[np.ndarray] = []
    delivered_payload = 0
    for msg in messages:
        breakdown.overhead += msg.overhead_bytes
        delivered_payload += msg.payload_bytes
        single = msg.meta.get("range1")
        if single is not None:
            single_starts.append(single[0])
            single_lens.append(single[1])
            continue
        ranges = msg.meta.get("ranges")
        if ranges is None:
            raise ValueError(f"message {msg} lacks range annotations")
        starts_parts.append(np.asarray(ranges[0], dtype=np.int64))
        lens_parts.append(np.asarray(ranges[1], dtype=np.int64))
    if single_starts:
        starts_parts.append(np.asarray(single_starts, dtype=np.int64))
        lens_parts.append(np.asarray(single_lens, dtype=np.int64))
    starts = np.concatenate(starts_parts) if starts_parts else np.empty(0, np.int64)
    lens = np.concatenate(lens_parts) if lens_parts else np.empty(0, np.int64)
    classify_ranges(
        starts, lens, delivered_payload, final_footprint, read_set, breakdown
    )
    return breakdown


def classify_ranges(
    starts: np.ndarray,
    lens: np.ndarray,
    delivered_payload: int,
    final_footprint: IntervalSet,
    read_set: IntervalSet,
    breakdown: ByteBreakdown,
) -> None:
    """Core of :func:`classify_messages`: classify pre-flattened ranges.

    ``breakdown`` accumulates in place (its ``overhead`` is the
    caller's concern).  The batch transport path calls this directly
    with its struct-of-arrays ranges, skipping message objects.
    """
    delivered_union = IntervalSet.from_ranges(starts, lens)
    declared = int(lens.sum())
    if declared != delivered_payload:
        raise ValueError(
            f"range annotations cover {declared} B but messages claim "
            f"{delivered_payload} B of payload"
        )
    useful = delivered_union.intersect(final_footprint).intersect(read_set).total_bytes
    unique = delivered_union.total_bytes
    breakdown.useful += useful
    breakdown.wasted_redundant += delivered_payload - unique
    breakdown.wasted_unread += unique - useful


@dataclass
class PacketStats:
    """Aggregated packet statistics (Figure 11 input)."""

    messages: int = 0
    stores_carried: int = 0
    by_kind: dict[MessageKind, int] = field(default_factory=dict)
    #: stores_packed of each data-carrying message, for distributions.
    packed_counts: list[int] = field(default_factory=list)

    def record(self, msg: WireMessage) -> None:
        self.messages += 1
        self.stores_carried += msg.stores_packed
        self.by_kind[msg.kind] = self.by_kind.get(msg.kind, 0) + 1
        if msg.kind in (MessageKind.FINEPACK, MessageKind.STORE, MessageKind.COMBINED_STORE):
            self.packed_counts.append(msg.stores_packed)

    @property
    def mean_stores_per_packet(self) -> float:
        if not self.packed_counts:
            return 0.0
        return float(np.mean(self.packed_counts))


@dataclass
class FaultAccounting:
    """Fault/replay/resilience roll-up for one run.

    Aggregated from every link's :class:`~repro.interconnect.link.
    LinkStats` plus the topology's rerouting counter and the system's
    drop ledger; all zeros for a healthy run.
    """

    replays: int = 0
    replay_bytes: int = 0
    replay_saturations: int = 0
    retransmits: int = 0
    fault_stall_ns: float = 0.0
    rerouted_messages: int = 0
    dropped_messages: int = 0
    dropped_bytes: int = 0

    @property
    def any(self) -> bool:
        """Whether the fabric misbehaved at all during the run."""
        return bool(
            self.replays
            or self.retransmits
            or self.fault_stall_ns
            or self.rerouted_messages
            or self.dropped_messages
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "replays": self.replays,
            "replay_bytes": self.replay_bytes,
            "replay_saturations": self.replay_saturations,
            "retransmits": self.retransmits,
            "fault_stall_ns": self.fault_stall_ns,
            "rerouted_messages": self.rerouted_messages,
            "dropped_messages": self.dropped_messages,
            "dropped_bytes": self.dropped_bytes,
        }


@dataclass
class LinkUtilization:
    """Busy-time fraction of each interconnect link over the run."""

    by_link: dict[str, float] = field(default_factory=dict)

    @property
    def peak(self) -> float:
        return max(self.by_link.values(), default=0.0)

    @property
    def mean(self) -> float:
        if not self.by_link:
            return 0.0
        return sum(self.by_link.values()) / len(self.by_link)

    def gpu_egress(self) -> dict[str, float]:
        """Utilization of the GPU upstream links only."""
        return {k: v for k, v in self.by_link.items() if k.startswith("gpu")}


@dataclass
class RunMetrics:
    """Everything measured in one (workload, paradigm) simulation."""

    workload: str
    paradigm: str
    n_gpus: int
    total_time_ns: float = 0.0
    iteration_times_ns: list[float] = field(default_factory=list)
    compute_time_ns: float = 0.0
    bytes: ByteBreakdown = field(default_factory=ByteBreakdown)
    packets: PacketStats = field(default_factory=PacketStats)
    links: LinkUtilization = field(default_factory=LinkUtilization)
    faults: FaultAccounting = field(default_factory=FaultAccounting)
    #: Per-link traffic/fault counters (``link -> summary dict``); see
    #: :meth:`MultiGPUSystem.run` for the keys.
    link_stats: dict[str, dict] = field(default_factory=dict)
    #: True when the run ended in graceful degradation (the metrics are
    #: partial: accumulated up to the degraded iteration).
    degraded: bool = False

    # Which model produced these metrics: "des" (the event simulator)
    # or "analytical" (repro.analytical's closed-form predictions).
    # Deliberately an *unannotated* class attribute, not a dataclass
    # field: the analytical tier overrides it per instance (surviving
    # pickling via __dict__) without perturbing dataclass equality or
    # the golden fingerprint canonicalization, which iterate fields.
    fidelity = "des"

    @property
    def wire_bytes(self) -> int:
        return self.bytes.total

    @property
    def goodput(self) -> float:
        return self.bytes.payload / self.bytes.total if self.bytes.total else 0.0

    @property
    def efficiency(self) -> float:
        """Useful fraction of all bytes on the wire."""
        return self.bytes.useful / self.bytes.total if self.bytes.total else 0.0

    def summary(self) -> dict[str, float]:
        out = {
            "workload": self.workload,
            "paradigm": self.paradigm,
            "n_gpus": self.n_gpus,
            "total_time_ms": self.total_time_ns / 1e6,
            "wire_MB": self.bytes.total / 1e6,
            "useful_MB": self.bytes.useful / 1e6,
            "goodput": round(self.goodput, 4),
            "efficiency": round(self.efficiency, 4),
            "stores_per_packet": round(self.packets.mean_stores_per_packet, 2),
        }
        if self.faults.any:
            f = self.faults
            out["replays"] = f.replays
            out["retransmits"] = f.retransmits
            out["rerouted"] = f.rerouted_messages
            out["dropped"] = f.dropped_messages
            out["fault_stall_ms"] = round(f.fault_stall_ns / 1e6, 4)
        if self.degraded:
            out["degraded"] = True
        if self.fidelity != "des":
            out["fidelity"] = self.fidelity
        return out
