"""Self-check harness for custom configurations.

Downstream users extending the simulator (new workloads, egress
engines, protocols) can run :func:`validate` on their combination to
check the invariants the stock test-suite enforces:

1. **byte conservation** -- every byte the trace stores remotely is
   delivered by the paradigm (sector/line engines may over-deliver,
   never under-deliver);
2. **release emptiness** -- no egress engine retains data across the
   kernel-end release;
3. **ledger consistency** -- payload classification partitions exactly
   into useful + wasted, and overhead is non-negative;
4. **timing sanity** -- every iteration takes at least its compute
   time, and the infinite-bandwidth paradigm is a lower bound.

Returns a :class:`ValidationReport`; ``raise_on_failure=True`` turns
violations into :class:`ValidationError` for use in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..trace.intervals import IntervalSet
from ..trace.stream import WorkloadTrace
from .metrics import RunMetrics
from .paradigms import Paradigm, make_paradigm
from .system import MultiGPUSystem


class ValidationError(Exception):
    """A simulator invariant was violated."""


@dataclass
class ValidationReport:
    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append((name, ok, detail))

    @property
    def passed(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def failures(self) -> list[str]:
        return [f"{name}: {detail}" for name, ok, detail in self.checks if not ok]

    def summary(self) -> str:
        lines = []
        for name, ok, detail in self.checks:
            mark = "PASS" if ok else "FAIL"
            suffix = f" -- {detail}" if detail and not ok else ""
            lines.append(f"[{mark}] {name}{suffix}")
        return "\n".join(lines)


def _delivered_union(messages) -> IntervalSet:
    starts: list[int] = []
    lens: list[int] = []
    for msg in messages:
        single = msg.meta.get("range1")
        if single is not None:
            starts.append(single[0])
            lens.append(single[1])
            continue
        ranges = msg.meta.get("ranges")
        if ranges is not None:
            starts.extend(np.asarray(ranges[0]).tolist())
            lens.extend(np.asarray(ranges[1]).tolist())
    return IntervalSet.from_ranges(starts, lens)


def validate(
    trace: WorkloadTrace,
    paradigm: Paradigm | str = "finepack",
    system: MultiGPUSystem | None = None,
    raise_on_failure: bool = False,
) -> ValidationReport:
    """Run the invariant battery on one (trace, paradigm, system)."""
    report = ValidationReport()
    system = system or MultiGPUSystem.build(n_gpus=trace.n_gpus)
    if isinstance(paradigm, str):
        paradigm = make_paradigm(paradigm)

    # --- per-phase byte conservation and release emptiness ----------
    paradigm.attach(system.n_gpus, system.protocol)
    covers_stores = hasattr(paradigm, "engines")  # store-based paradigms
    for k, iteration in enumerate(trace.iterations):
        consumer = trace.iterations[min(k + 1, trace.n_iterations - 1)]
        reads = {p.gpu: p.reads for p in consumer.phases}
        for phase in iteration.phases:
            msgs = paradigm.phase_messages(phase, 0.0, 1_000.0, reads)
            if covers_stores:
                stored = phase.stores.footprint()
                if phase.atomics.count:
                    stored = stored.union(phase.atomics.footprint())
                # GPS-style subscription may legitimately elide unread
                # bytes; conservation then applies to the read subset.
                target = stored
                if getattr(paradigm, "name", "") == "gps":
                    all_reads = IntervalSet.empty()
                    for r in reads.values():
                        all_reads = all_reads.union(r)
                    target = stored.intersect(all_reads)
                missing = target.difference(_delivered_union(msgs))
                report.record(
                    f"coverage[it{k},gpu{phase.gpu}]",
                    not missing,
                    f"{missing.total_bytes} stored bytes never sent"
                    if missing
                    else "",
                )
        # Release emptiness across all engines of store paradigms.
        for engine in getattr(paradigm, "engines", []):
            leftovers = engine.on_release(2_000.0)
            report.record(
                f"release-empty[it{k}]",
                not leftovers,
                f"{len(leftovers)} packets retained" if leftovers else "",
            )
            if leftovers:
                break

    # --- full timed run: ledger + timing sanity ----------------------
    # (run() re-attaches the paradigm, giving it fresh engine state.)
    metrics: RunMetrics = MultiGPUSystem.build(n_gpus=trace.n_gpus).run(
        trace, paradigm
    )
    b = metrics.bytes
    report.record(
        "ledger-partition",
        b.payload == b.useful + b.wasted and b.overhead >= 0,
        f"payload {b.payload} != useful {b.useful} + wasted {b.wasted}",
    )
    report.record(
        "timing-floor",
        metrics.total_time_ns >= metrics.compute_time_ns * 0.999,
        "the run finished before its compute",
    )
    infinite = MultiGPUSystem.build(n_gpus=trace.n_gpus).run(
        trace, make_paradigm("infinite")
    )
    report.record(
        "infinite-lower-bound",
        metrics.total_time_ns >= infinite.total_time_ns * 0.999,
        f"{metrics.total_time_ns} < infinite {infinite.total_time_ns}",
    )

    if raise_on_failure and not report.passed:
        raise ValidationError("; ".join(report.failures()))
    return report
