"""ASCII timeline rendering of a simulation run.

Gives a quick visual of the paper's central mechanism -- how much of
the communication hides under compute per iteration, and how busy each
GPU's egress link is.  Intended for terminals and logs:

    === pagerank / finepack: iteration timeline ===
    it 0  compute |##########          | 10.1us   comm 48%  of iter
    ...
"""

from __future__ import annotations

from .metrics import RunMetrics


def render_timeline(metrics: RunMetrics, width: int = 30) -> str:
    """Render per-iteration compute-vs-iteration bars for one run."""
    lines = [f"=== {metrics.workload} / {metrics.paradigm}: iteration timeline ==="]
    n_iters = len(metrics.iteration_times_ns)
    if n_iters == 0:
        return lines[0] + "\n(no iterations)"
    compute_per_iter = metrics.compute_time_ns / n_iters
    for i, iter_ns in enumerate(metrics.iteration_times_ns):
        frac = min(1.0, compute_per_iter / iter_ns) if iter_ns else 0.0
        filled = int(round(frac * width))
        bar = "#" * filled + "." * (width - filled)
        lines.append(
            f"it {i:<2d} compute |{bar}| {iter_ns / 1e3:8.1f} us "
            f"({frac:4.0%} compute)"
        )
    if metrics.links.by_link:
        lines.append("egress link utilization:")
        for name, frac in sorted(metrics.links.gpu_egress().items()):
            filled = int(round(min(frac, 1.0) * width))
            lines.append(
                f"  {name:<12s} |{'#' * filled}{'.' * (width - filled)}| {frac:5.1%}"
            )
    return "\n".join(lines)


def render_comparison(runs: dict[str, RunMetrics], width: int = 40) -> str:
    """Side-by-side total-time bars for several paradigms."""
    if not runs:
        return "(no runs)"
    slowest = max(m.total_time_ns for m in runs.values())
    name_w = max(len(n) for n in runs)
    lines = [f"=== {next(iter(runs.values())).workload}: total time ==="]
    for name, m in runs.items():
        frac = m.total_time_ns / slowest if slowest else 0.0
        filled = max(1, int(round(frac * width)))
        lines.append(
            f"{name:<{name_w}s} |{'#' * filled:<{width}s}| "
            f"{m.total_time_ns / 1e6:7.3f} ms"
        )
    return "\n".join(lines)
