"""GPS subscription learning (paper Sec. VI-B comparison, refined).

GPS (MICRO 2021) does not know statically which replicas need which
data: it starts by *publishing* every store to every replica, observes
which pages each subscriber actually reads, and dynamically
*unsubscribes* replicas from pages they never touch -- eliminating that
traffic from later epochs.

:class:`SubscriptionTable` implements that mechanism at page
granularity: epoch 0 broadcasts, each epoch's consumer reads are
learned, and pages written-but-unread get unsubscribed for subsequent
epochs.  The learned variant of :class:`~repro.sim.paradigms.GPSParadigm`
uses it instead of the oracle read-set filter, reproducing GPS's
characteristic first-epoch overshoot followed by steady-state savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..trace.intervals import IntervalSet


@dataclass
class SubscriptionStats:
    stores_seen: int = 0
    stores_elided: int = 0
    pages_unsubscribed: int = 0

    @property
    def elision_rate(self) -> float:
        return self.stores_elided / self.stores_seen if self.stores_seen else 0.0


@dataclass
class SubscriptionTable:
    """Per-destination page subscription state for one producer GPU.

    Pages default to *subscribed*; :meth:`learn_epoch` unsubscribes the
    pages a destination was sent but did not read.  A page that is read
    again later re-subscribes (GPS handles resubscription through
    faults; we model it as immediate).
    """

    page_bytes: int = 4096
    _unsubscribed: dict[int, set[int]] = field(default_factory=dict)
    #: Pages written to each destination during the current epoch.
    _written: dict[int, set[int]] = field(default_factory=dict)
    stats: SubscriptionStats = field(default_factory=SubscriptionStats)

    def __post_init__(self) -> None:
        if self.page_bytes & (self.page_bytes - 1):
            raise ValueError(f"page_bytes must be a power of two: {self.page_bytes}")

    def filter_stores(
        self, addrs: np.ndarray, sizes: np.ndarray, dsts: np.ndarray
    ) -> np.ndarray:
        """Boolean keep-mask applying current subscriptions.

        Also records the written pages of the stores that survive, for
        this epoch's learning step.
        """
        keep = np.ones(addrs.size, dtype=bool)
        self.stats.stores_seen += int(addrs.size)
        pages = addrs // self.page_bytes
        for dst in np.unique(dsts).tolist():
            idx = np.flatnonzero(dsts == dst)
            dead = self._unsubscribed.get(dst)
            if dead:
                drop = np.fromiter(
                    (int(p) in dead for p in pages[idx]), bool, idx.size
                )
                keep[idx[drop]] = False
                idx = idx[~drop]
            written = self._written.setdefault(dst, set())
            written.update(int(p) for p in np.unique(pages[idx]))
        self.stats.stores_elided += int((~keep).sum())
        return keep

    def learn_epoch(self, consumer_reads: dict[int, IntervalSet]) -> None:
        """End of epoch: unsubscribe written-but-unread pages."""
        for dst, written in self._written.items():
            reads = consumer_reads.get(dst)
            read_pages: set[int] = set()
            if reads is not None and reads:
                for s, e in zip(reads.starts.tolist(), reads.ends.tolist()):
                    read_pages.update(
                        range(s // self.page_bytes, (e - 1) // self.page_bytes + 1)
                    )
            dead = self._unsubscribed.setdefault(dst, set())
            newly_dead = written - read_pages
            self.stats.pages_unsubscribed += len(newly_dead - dead)
            dead |= newly_dead
            # Pages read this epoch resubscribe.
            dead -= read_pages
        self._written.clear()

    def is_subscribed(self, dst: int, addr: int) -> bool:
        return addr // self.page_bytes not in self._unsubscribed.get(dst, set())
