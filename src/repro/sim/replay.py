"""Execution-driven replay: feed fine-grained trace events directly.

The paper's NVAS substrate is *trace- and execution-driven*: besides
replaying bulk traces, it consumes instruction-level event streams as
an attached execution produces them.  :class:`EventReplaySession` is
that second front end for this simulator: callers feed
:mod:`repro.trace.events` objects (stores, loads, atomics, fences,
kernel boundaries, peer copies) in per-GPU timestamp order, and the
session drives the active paradigm's egress engines and the switched
interconnect live, accumulating the same statistics as the bulk path.

This is the integration point for coupling an actual application (or a
finer simulator) to the FinePack model without materializing a
:class:`~repro.trace.stream.WorkloadTrace` first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.consistency import Scope
from ..gpu.memory import owner_of
from ..interconnect.message import MessageKind, WireMessage
from ..trace.events import (
    AtomicEvent,
    EventKind,
    FenceEvent,
    LoadEvent,
    MemcpyPeerEvent,
    StoreEvent,
    TraceEvent,
)
from .metrics import PacketStats
from .system import MultiGPUSystem


@dataclass
class ReplayReport:
    """What an event-replay session observed."""

    events: int = 0
    stores: int = 0
    loads: int = 0
    atomics: int = 0
    fences: int = 0
    copies: int = 0
    wire_payload_bytes: int = 0
    wire_overhead_bytes: int = 0
    last_delivery_ns: float = 0.0
    packets: PacketStats = field(default_factory=PacketStats)

    @property
    def wire_bytes(self) -> int:
        return self.wire_payload_bytes + self.wire_overhead_bytes


class ReplayError(Exception):
    """An event stream violated the replay contract."""


class EventReplaySession:
    """Drives a :class:`MultiGPUSystem` from a live event stream.

    Parameters
    ----------
    system:
        The simulated platform (provides topology and protocol).
    paradigm:
        The communication paradigm whose egress engines translate
        events into wire messages.  Store-based paradigms only -- the
        memcpy paradigm has no event-level egress semantics beyond
        :class:`MemcpyPeerEvent`, which is handled directly.
    strict_release:
        When True (default), a system-scoped fence that leaves data in
        any egress buffer raises -- the memory-model conformance check.
    """

    def __init__(self, system: MultiGPUSystem, paradigm, strict_release: bool = True):
        if system.topology is None:
            raise ValueError("event replay needs a multi-GPU system")
        self.system = system
        self.paradigm = paradigm
        self.strict_release = strict_release
        paradigm.attach(system.n_gpus, system.protocol)
        self.engines = paradigm.engines
        self.report = ReplayReport()
        self._last_time = [0.0] * system.n_gpus
        self._finished = False

    # -- internals ----------------------------------------------------

    def _check_time(self, event: TraceEvent) -> None:
        if not 0 <= event.gpu < self.system.n_gpus:
            raise ReplayError(f"event GPU {event.gpu} outside system")
        if event.time < self._last_time[event.gpu]:
            raise ReplayError(
                f"events for GPU {event.gpu} went backwards: "
                f"{event.time} < {self._last_time[event.gpu]}"
            )
        self._last_time[event.gpu] = event.time

    def _route(self, messages: list[WireMessage]) -> None:
        for msg in messages:
            delivered = self.system.topology.route(msg, msg.issue_time)
            self.report.packets.record(msg)
            self.report.wire_payload_bytes += msg.payload_bytes
            self.report.wire_overhead_bytes += msg.overhead_bytes
            self.report.last_delivery_ns = max(
                self.report.last_delivery_ns, delivered
            )

    # -- event intake --------------------------------------------------

    def feed(self, event: TraceEvent) -> None:
        """Consume one event; routes any wire traffic it produced."""
        if self._finished:
            raise ReplayError("session already finished")
        self._check_time(event)
        self.report.events += 1
        engine = self.engines[event.gpu]

        if isinstance(event, StoreEvent):
            self.report.stores += 1
            dst = event.dst if event.dst >= 0 else owner_of(event.addr)
            if dst == event.gpu:
                return  # local store: no interconnect traffic
            self._route(engine.on_store(event.addr, event.size, dst, event.time))
        elif isinstance(event, AtomicEvent):
            self.report.atomics += 1
            dst = event.dst if event.dst >= 0 else owner_of(event.addr)
            if dst == event.gpu:
                return
            self._route(engine.on_atomic(event.addr, event.size, dst, event.time))
        elif isinstance(event, LoadEvent):
            self.report.loads += 1
            dst = event.dst if event.dst >= 0 else owner_of(event.addr)
            if dst == event.gpu:
                return
            self._route(
                engine.on_remote_load(event.addr, event.size, dst, event.time)
            )
        elif isinstance(event, FenceEvent):
            self.report.fences += 1
            if event.scope is Scope.SYSTEM:
                self._release(event.gpu, event.time)
        elif isinstance(event, MemcpyPeerEvent):
            self.report.copies += 1
            payload, overhead = self.system.protocol.bulk_transfer_cost(
                event.nbytes
            )
            self._route(
                [
                    WireMessage(
                        src=event.gpu,
                        dst=event.dst,
                        payload_bytes=payload,
                        overhead_bytes=overhead,
                        kind=MessageKind.DMA_CHUNK,
                        issue_time=event.time,
                        stores_packed=0,
                        meta={"range1": (event.dst_addr, event.nbytes)},
                    )
                ]
            )
        elif event.kind in (EventKind.KERNEL_BEGIN, EventKind.KERNEL_END):
            if event.kind is EventKind.KERNEL_END:
                self._release(event.gpu, event.time)
        else:  # pragma: no cover - exhaustive over the vocabulary
            raise ReplayError(f"unhandled event kind {event.kind}")

    def _release(self, gpu: int, time: float) -> None:
        engine = self.engines[gpu]
        self._route(engine.on_release(time))
        if self.strict_release:
            leftovers = engine.on_release(time)
            if leftovers:
                raise ReplayError(
                    f"GPU {gpu} egress retained data across a "
                    f"system-scoped release"
                )

    def finish(self) -> ReplayReport:
        """Flush every GPU and return the accumulated report."""
        if not self._finished:
            for gpu, engine in enumerate(self.engines):
                self._route(engine.on_release(self._last_time[gpu]))
            self._finished = True
        return self.report


def phase_events(phase, start: float, end: float):
    """Bridge: expand a phase-level trace into an event stream.

    Yields the kernel boundary, the remote stores spread across
    ``(start, end]`` and the closing kernel end -- the same issue model
    the bulk path uses, enabling equivalence testing between the two
    front ends.
    """
    from ..trace.events import EventKind as EK
    from ..trace.events import StoreEvent as SE
    from ..trace.events import TraceEvent as TE

    yield TE(kind=EK.KERNEL_BEGIN, gpu=phase.gpu, time=start)
    s = phase.stores
    n = s.count
    # One vectorized pass over the store columns; the time expression
    # keeps the scalar loop's float-op grouping ((end-start)*(i+1))/n
    # exactly, so event times match the historical stream bit-for-bit.
    times = start + (end - start) * np.arange(1, n + 1) / n
    for a, size, d, t in zip(
        s.addrs.tolist(), s.sizes.tolist(), s.dsts.tolist(), times.tolist()
    ):
        yield SE(
            kind=EK.STORE,
            gpu=phase.gpu,
            time=t,
            addr=a,
            size=size,
            dst=d,
        )
    yield TE(kind=EK.KERNEL_END, gpu=phase.gpu, time=end)
