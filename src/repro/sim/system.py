"""The multi-GPU system simulator.

Ties the substrates together: per-GPU compute timing, paradigm egress
engines, the switched interconnect, receiver-side ingress draining, and
the per-iteration bulk-synchronous barrier.  One call to
:meth:`MultiGPUSystem.run` replays a workload trace under one paradigm
and returns complete :class:`RunMetrics`.

Timeline of one iteration (paper's execution model):

1. Every GPU starts its kernel at the barrier; the kernel lasts a
   roofline-modelled duration.
2. Store-based paradigms issue their remote stores spread across the
   kernel (overlap); kernel end acts as a system-scoped release that
   flushes egress buffers.  The memcpy paradigm instead issues bulk
   copies after the kernel, paying per-call software overhead.
3. Messages serialize through the switched topology in global time
   order (discrete-event), then drain into the destination's memory
   system (FinePack packets pass the de-packetizer's bounded ingress
   buffer).
4. The next iteration starts when all kernels are done *and* all
   traffic has drained, plus a barrier cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import FinePackConfig
from ..core.depacketizer import Depacketizer
from ..faults.errors import DegradedRunError
from ..faults.state import RouteBlockedError
from ..gpu.compute import ComputeModel
from ..gpu.gpu import GPU
from ..interconnect.message import MessageKind, WireMessage
from ..interconnect.pcie import PCIE_GEN4, PCIeGeneration, PCIeProtocol
from ..interconnect.topology import Topology
from ..perf import profiler as _prof
from ..perf.batch import arrays_from_messages
from ..perf.config import get_perf_config
from ..perf.transport import (
    build_plan,
    drain_and_record,
    links_eligible,
    transmit_flat,
)
from ..registry import RegistryError
from ..registry import topologies as topology_registry
from ..trace.intervals import IntervalSet
from ..trace.stream import WorkloadTrace
from .engine import Engine
from .metrics import ByteBreakdown, RunMetrics, classify_messages, classify_ranges
from .paradigms import Paradigm


@dataclass
class MultiGPUSystem:
    """An N-GPU node with a switched PCIe interconnect."""

    n_gpus: int
    protocol: PCIeProtocol
    gpus: list[GPU]
    topology: Topology | None
    finepack_config: FinePackConfig = field(default_factory=FinePackConfig)
    #: Cost of the inter-GPU synchronization barrier per iteration.
    barrier_ns: float = 2_000.0
    #: Optional :class:`~repro.faults.injector.FaultInjector`; when set,
    #: its schedule is armed on the topology at the start of every run.
    fault_injector: object | None = None

    @classmethod
    def build(
        cls,
        n_gpus: int = 4,
        generation: PCIeGeneration = PCIE_GEN4,
        compute: ComputeModel | None = None,
        finepack_config: FinePackConfig | None = None,
        barrier_ns: float = 2_000.0,
        two_level: bool = False,
        topology_kind: str | None = None,
        topology_params: dict | None = None,
        with_credits: bool = False,
        error_rate: float = 0.0,
        fault_injector: object | None = None,
    ) -> "MultiGPUSystem":
        """Construct the paper's testbed (or a variant).

        ``topology_kind`` selects a factory from
        :data:`repro.registry.topologies` -- ``"single_switch"`` (the
        paper's 4-GPU testbed, default), ``"two_level"`` (the projected
        16-GPU tree), ``"fully_connected"`` (NVSwitch-class pairwise
        links), ``"fat_tree"`` (multi-level, 8-64+ GPUs) or
        ``"switched_mesh"`` (multi-plane rails); the legacy
        ``two_level`` flag is a shorthand for the second.
        ``topology_params`` passes factory-specific keywords through
        (``fanout``, ``oversubscription``, ``planes``, ...).
        ``error_rate`` is the baseline per-byte corruption probability
        of every link (see :class:`~repro.core.config.FabricConfig`);
        ``fault_injector`` arms a scenario's scheduled faults.
        """
        compute = compute or ComputeModel()
        gpus = [GPU(index=i, compute=compute) for i in range(n_gpus)]
        topology: Topology | None = None
        if n_gpus > 1:
            kind = topology_kind or ("two_level" if two_level else "single_switch")
            try:
                factory = topology_registry.resolve(kind)
            except RegistryError as exc:
                raise ValueError(str(exc)) from None
            topology = factory(
                n_gpus=n_gpus,
                generation=generation,
                with_credits=with_credits,
                error_rate=error_rate,
                **(topology_params or {}),
            )
        return cls(
            n_gpus=n_gpus,
            protocol=PCIeProtocol(generation),
            gpus=gpus,
            topology=topology,
            finepack_config=finepack_config or FinePackConfig(),
            barrier_ns=barrier_ns,
            fault_injector=fault_injector,
        )

    def run(
        self, trace: WorkloadTrace, paradigm: Paradigm, tracer=None
    ) -> RunMetrics:
        """Replay ``trace`` under ``paradigm``; returns run metrics.

        ``tracer`` is an optional :class:`repro.obs.Tracer`: when given,
        the run emits the full structured event stream (kernel spans,
        message lifecycle, per-link serialization, remote-write-queue
        activity, barriers) and -- by default -- checks runtime
        invariants as it goes.  One tracer observes one run.
        """
        if trace.n_gpus != self.n_gpus:
            raise ValueError(
                f"trace is for {trace.n_gpus} GPUs, system has {self.n_gpus}"
            )
        paradigm.attach(self.n_gpus, self.protocol)
        if self.topology is not None:
            self.topology.reset()
        if tracer is not None:
            if self.topology is not None:
                self.topology.set_tracer(tracer)
            for egress in getattr(paradigm, "engines", []):
                egress.tracer = tracer
        if self.fault_injector is not None and self.topology is not None:
            self.fault_injector.arm(self.topology, tracer=tracer)
        engine = Engine(tracer=tracer)
        depacketizers = [
            Depacketizer(
                self.finepack_config,
                drain_bytes_per_ns=g.hbm.drain_rate(),
            )
            for g in self.gpus
        ]
        metrics = RunMetrics(
            workload=trace.name, paradigm=paradigm.name, n_gpus=self.n_gpus
        )

        prof = _prof.ACTIVE
        # Batch-transport eligibility, decided once per run: the
        # event-driven path stays authoritative whenever anything needs
        # per-message hooks or stateful links (tracers, armed faults,
        # flow-control credits, replay RNGs).  Topology-wise the plan
        # only requires an acyclic route adjacency (true for every
        # tree/mesh factory, including multi-level fat trees): links
        # are processed in topological order with per-link traffic
        # merged in global issue order, reproducing the scalar call
        # sequence exactly (see repro.perf.transport).
        plan = None
        if (
            get_perf_config().vector_transport
            and self.topology is not None
            and tracer is None
            and self.fault_injector is None
            and links_eligible(self.topology)
        ):
            plan = build_plan(self.topology)
        phase_batch = (
            getattr(paradigm, "phase_batch", None) if plan is not None else None
        )
        drain_rates = np.asarray(
            [g.hbm.drain_rate() for g in self.gpus], dtype=np.float64
        )

        t = 0.0
        #: id(msg) of messages dropped because no live route remained,
        #: and the human-readable reasons (for DegradedRunError).
        dropped_ids: set[int] = set()
        degraded_reasons: list[str] = []
        n_iters = trace.n_iterations
        for k, iteration in enumerate(trace.iterations):
            compute_end = {
                p.gpu: t + self.gpus[p.gpu].kernel_time_ns(p.work)
                for p in iteration.phases
            }
            if tracer is not None:
                releases = hasattr(paradigm, "engines")
                for gpu in sorted(compute_end):
                    tracer.kernel(gpu, t, compute_end[gpu], iteration=k)
                    if releases:
                        tracer.fence_release(gpu, compute_end[gpu])
            # Data produced in iteration k is consumed in iteration k+1;
            # the final iteration reuses its own read set as the
            # steady-state consumer.
            consumer_iter = trace.iterations[min(k + 1, n_iters - 1)]
            consumer_reads: dict[int, IntervalSet] = {
                p.gpu: p.reads for p in consumer_iter.phases
            }

            if plan is not None:
                latest = self._iteration_batched(
                    iteration,
                    t,
                    compute_end,
                    consumer_reads,
                    paradigm,
                    phase_batch,
                    plan,
                    drain_rates,
                    depacketizers,
                    metrics,
                    prof,
                )
                iteration_end = (
                    max(max(compute_end.values()), t, latest) + self.barrier_ns
                )
                metrics.compute_time_ns += max(compute_end.values()) - t
                # No tracer and no faults on this path (preconditions of
                # the batch plan), so the scalar epilogue reduces to:
                metrics.iteration_times_ns.append(iteration_end - t)
                t = iteration_end
                continue

            per_pair: dict[tuple[int, int], list[WireMessage]] = {}
            all_msgs: list[WireMessage] = []
            if prof is not None:
                prof.begin("egress")
            for phase in iteration.phases:
                msgs = paradigm.phase_messages(
                    phase, t, compute_end[phase.gpu], consumer_reads
                )
                for m in msgs:
                    per_pair.setdefault((m.src, m.dst), []).append(m)
                all_msgs.append(msgs)
            if prof is not None:
                prof.end()
            all_msgs = [m for msgs in all_msgs for m in msgs]

            completions = [t]

            def inject(msg: WireMessage) -> None:
                assert self.topology is not None
                msg_id = (
                    tracer.message_injected(msg, engine.now)
                    if tracer is not None
                    else None
                )
                if prof is not None:
                    prof.begin("link_serialization")
                try:
                    delivered = self.topology.route(msg, engine.now)
                except RouteBlockedError as exc:
                    # Graceful degradation: the destination is
                    # unreachable.  Drop the message, keep accounts
                    # balanced, and finish the iteration so the run
                    # ends with partial metrics instead of hanging.
                    dropped_ids.add(id(msg))
                    metrics.faults.dropped_messages += 1
                    metrics.faults.dropped_bytes += msg.payload_bytes
                    degraded_reasons.append(str(exc))
                    if msg_id is not None:
                        tracer.message_dropped(msg_id, msg, engine.now)
                    if prof is not None:
                        prof.end()
                    return
                if prof is not None:
                    prof.end()
                    prof.begin("ingress_drain")
                if msg.kind is MessageKind.FINEPACK:
                    drained = depacketizers[msg.dst].admit(
                        msg.meta["packet"], delivered
                    )
                else:
                    drained = delivered + msg.payload_bytes / self.gpus[
                        msg.dst
                    ].hbm.drain_rate()
                if prof is not None:
                    prof.end()
                completions.append(drained)
                metrics.packets.record(msg)
                if msg_id is not None:
                    tracer.message_delivered(msg_id, msg, delivered)
                    tracer.message_drained(msg_id, msg, drained)

            for m in sorted(all_msgs, key=lambda m: m.issue_time):
                engine.schedule(m.issue_time, inject, m)
            if prof is not None:
                prof.begin("engine_dispatch")
            engine.run()
            if prof is not None:
                prof.end()

            iteration_end = (
                max(max(compute_end.values()), max(completions)) + self.barrier_ns
            )
            metrics.compute_time_ns += max(compute_end.values()) - t

            if prof is not None:
                prof.begin("metrics_classify")
            for (src, dst), msgs in per_pair.items():
                if dropped_ids:
                    msgs = [m for m in msgs if id(m) not in dropped_ids]
                    if not msgs:
                        continue
                metrics.bytes.add(
                    classify_messages(
                        msgs,
                        self._pair_footprint(iteration, src, dst),
                        consumer_reads.get(dst, IntervalSet.empty()),
                    )
                )
            if prof is not None:
                prof.end()

            if tracer is not None:
                tracer.barrier(k, iteration_end - self.barrier_ns, iteration_end)
                tracer.iteration(k, t, iteration_end)
            metrics.iteration_times_ns.append(iteration_end - t)
            t = iteration_end
            if degraded_reasons:
                # The fabric lost a destination this iteration; the
                # remaining iterations would only replay the same drops.
                break

        metrics.total_time_ns = t
        self._collect_fabric_stats(metrics, t)
        if tracer is not None:
            if self.topology is not None:
                self.topology.set_tracer(None)
            tracer.finish()
        if degraded_reasons:
            metrics.degraded = True
            # Deduplicate while preserving first-seen order.
            reasons = tuple(dict.fromkeys(degraded_reasons))
            raise DegradedRunError(
                f"run degraded after iteration {len(metrics.iteration_times_ns) - 1}: "
                f"{metrics.faults.dropped_messages} message(s) undeliverable",
                metrics=metrics,
                reasons=reasons,
            )
        return metrics

    def _pair_footprint(self, iteration, src: int, dst: int) -> IntervalSet:
        """Bytes the producer genuinely wrote for ``dst`` this iteration."""
        src_phase = iteration.phases[src]
        footprint = src_phase.stores.for_dst(dst).footprint()
        if src_phase.atomics.count:
            footprint = footprint.union(
                src_phase.atomics.for_dst(dst).footprint()
            )
        # Software-aggregated DMA staging buffers are genuinely
        # written by the producer in full.
        staged = [
            tr for tr in src_phase.dma if tr.dst == dst and tr.aggregated
        ]
        if staged:
            footprint = footprint.union(
                IntervalSet.from_ranges(
                    [tr.dst_addr for tr in staged],
                    [tr.nbytes for tr in staged],
                )
            )
        return footprint

    def _iteration_batched(
        self,
        iteration,
        t: float,
        compute_end: dict[int, float],
        consumer_reads: dict[int, IntervalSet],
        paradigm: Paradigm,
        phase_batch,
        plan,
        drain_rates: np.ndarray,
        depacketizers: list[Depacketizer],
        metrics: RunMetrics,
        prof,
    ) -> float:
        """One iteration through the batch transport; returns the
        latest drain completion (``-inf`` with no traffic).

        Byte-identical to the event-driven path: op streams, issue
        times, per-link call order, stats mutation order and every
        float operation match (see :mod:`repro.perf.transport`).
        """
        if prof is not None:
            prof.begin("egress")
        # Phase outputs in phase order: a (True, MessageBatch) when the
        # paradigm's engine batched the whole op stream, else a
        # (False, list[WireMessage]) from the scalar egress path.
        items: list[tuple[bool, object]] = []
        for phase in iteration.phases:
            batch = None
            if phase_batch is not None:
                batch = phase_batch(
                    phase, t, compute_end[phase.gpu], consumer_reads
                )
            if batch is not None:
                items.append((True, batch))
            else:
                items.append(
                    (
                        False,
                        paradigm.phase_messages(
                            phase, t, compute_end[phase.gpu], consumer_reads
                        ),
                    )
                )
        if prof is not None:
            prof.end()

        src_p: list[np.ndarray] = []
        dst_p: list[np.ndarray] = []
        pay_p: list[np.ndarray] = []
        ovh_p: list[np.ndarray] = []
        kind_p: list[np.ndarray] = []
        issue_p: list[np.ndarray] = []
        packed_p: list[np.ndarray] = []
        #: Flat per-message object refs (pre-sort order); ``None`` for
        #: batch elements, which never need their object back.
        obj_refs: list = []
        for is_batch, item in items:
            if is_batch:
                n = len(item)
                if n == 0:
                    continue
                src_p.append(np.full(n, item.src, dtype=np.int64))
                dst_p.append(item.dst)
                pay_p.append(item.payload)
                ovh_p.append(item.overhead)
                kind_p.append(item.kind)
                issue_p.append(item.issue)
                packed_p.append(item.packed)
                obj_refs.extend([None] * n)
            elif item:
                s, d, p, o, kd, ti, pk = arrays_from_messages(item)
                src_p.append(s)
                dst_p.append(d)
                pay_p.append(p)
                ovh_p.append(o)
                kind_p.append(kd)
                issue_p.append(ti)
                packed_p.append(pk)
                obj_refs.extend(item)

        latest = float("-inf")
        if obj_refs:
            issue = np.concatenate(issue_p)
            # Stable sort by issue time == the engine's (time, seq)
            # order, since seq follows the concatenation (phase) order.
            order = np.argsort(issue, kind="stable")
            issue = issue[order]
            src = np.concatenate(src_p)[order]
            dst = np.concatenate(dst_p)[order]
            payload = np.concatenate(pay_p)[order]
            overhead = np.concatenate(ovh_p)[order]
            kinds = np.concatenate(kind_p)[order]
            packed = np.concatenate(packed_p)[order]
            if prof is not None:
                prof.begin("link_serialization")
            deliveries = transmit_flat(
                self.topology,
                plan,
                src,
                dst,
                issue,
                payload + overhead,
                payload,
                overhead,
                packed,
                kinds,
            )
            if prof is not None:
                prof.end()
                prof.begin("ingress_drain")
            latest = drain_and_record(
                deliveries,
                dst,
                payload,
                packed,
                kinds,
                order,
                obj_refs,
                depacketizers,
                drain_rates,
                metrics.packets,
            )
            if prof is not None:
                prof.end()

        if prof is not None:
            prof.begin("metrics_classify")
        # Per-(src, dst) range/byte accumulators: [array-range starts,
        # array-range lengths, scalar starts, scalar lengths, payload,
        # overhead].  Range order inside a pair is irrelevant (interval
        # union and int sums), so batch segments and scalar messages
        # mix freely.
        pair_acc: dict[tuple[int, int], list] = {}
        for is_batch, item in items:
            if is_batch:
                if len(item) == 0:
                    continue
                d_arr = item.dst
                uniq, first = np.unique(d_arr, return_index=True)
                for j in np.argsort(first, kind="stable").tolist():
                    d = int(uniq[j])
                    idx = np.flatnonzero(d_arr == d)
                    acc = pair_acc.setdefault(
                        (item.src, d), [[], [], [], [], 0, 0]
                    )
                    acc[0].append(item.starts[idx])
                    acc[1].append(item.lengths[idx])
                    acc[4] += int(item.payload[idx].sum())
                    acc[5] += int(item.overhead[idx].sum())
            else:
                for m in item:
                    acc = pair_acc.setdefault(
                        (m.src, m.dst), [[], [], [], [], 0, 0]
                    )
                    acc[4] += m.payload_bytes
                    acc[5] += m.overhead_bytes
                    single = m.meta.get("range1")
                    if single is not None:
                        acc[2].append(single[0])
                        acc[3].append(single[1])
                        continue
                    ranges = m.meta.get("ranges")
                    if ranges is None:
                        raise ValueError(f"message {m} lacks range annotations")
                    acc[0].append(np.asarray(ranges[0], dtype=np.int64))
                    acc[1].append(np.asarray(ranges[1], dtype=np.int64))
        for (src_gpu, dst_gpu), acc in pair_acc.items():
            sp, lp, ss, sl, payload_sum, overhead_sum = acc
            if ss:
                sp.append(np.asarray(ss, dtype=np.int64))
                lp.append(np.asarray(sl, dtype=np.int64))
            starts = np.concatenate(sp) if sp else np.empty(0, np.int64)
            lens = np.concatenate(lp) if lp else np.empty(0, np.int64)
            breakdown = ByteBreakdown(overhead=overhead_sum)
            classify_ranges(
                starts,
                lens,
                payload_sum,
                self._pair_footprint(iteration, src_gpu, dst_gpu),
                consumer_reads.get(dst_gpu, IntervalSet.empty()),
                breakdown,
            )
            metrics.bytes.add(breakdown)
        if prof is not None:
            prof.end()
        return latest

    def _collect_fabric_stats(self, metrics: RunMetrics, total_ns: float) -> None:
        """Fold per-link counters into the run's fault/link accounting."""
        if self.topology is None:
            return
        faults = metrics.faults
        faults.rerouted_messages += self.topology.rerouted_messages
        for (a, b), stats in self.topology.all_stats().items():
            name = f"{a}->{b}"
            if total_ns > 0:
                metrics.links.by_link[name] = stats.busy_time_ns / total_ns
            faults.replays += stats.replays
            faults.replay_bytes += stats.replay_bytes
            faults.replay_saturations += stats.replay_saturations
            faults.retransmits += stats.retransmits
            faults.fault_stall_ns += stats.fault_stall_ns
            metrics.link_stats[name] = {
                "messages": stats.messages,
                "wire_bytes": stats.wire_bytes,
                "busy_time_ns": stats.busy_time_ns,
                "utilization": stats.busy_time_ns / total_ns if total_ns > 0 else 0.0,
                **stats.fault_summary(),
            }
