"""The multi-GPU system simulator.

Ties the substrates together: per-GPU compute timing, paradigm egress
engines, the switched interconnect, receiver-side ingress draining, and
the per-iteration bulk-synchronous barrier.  One call to
:meth:`MultiGPUSystem.run` replays a workload trace under one paradigm
and returns complete :class:`RunMetrics`.

Timeline of one iteration (paper's execution model):

1. Every GPU starts its kernel at the barrier; the kernel lasts a
   roofline-modelled duration.
2. Store-based paradigms issue their remote stores spread across the
   kernel (overlap); kernel end acts as a system-scoped release that
   flushes egress buffers.  The memcpy paradigm instead issues bulk
   copies after the kernel, paying per-call software overhead.
3. Messages serialize through the switched topology in global time
   order (discrete-event), then drain into the destination's memory
   system (FinePack packets pass the de-packetizer's bounded ingress
   buffer).
4. The next iteration starts when all kernels are done *and* all
   traffic has drained, plus a barrier cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import FinePackConfig
from ..core.depacketizer import Depacketizer
from ..faults.errors import DegradedRunError
from ..faults.state import RouteBlockedError
from ..gpu.compute import ComputeModel
from ..gpu.gpu import GPU
from ..interconnect.message import MessageKind, WireMessage
from ..interconnect.pcie import PCIE_GEN4, PCIeGeneration, PCIeProtocol
from ..interconnect.topology import Topology
from ..registry import RegistryError
from ..registry import topologies as topology_registry
from ..trace.intervals import IntervalSet
from ..trace.stream import WorkloadTrace
from .engine import Engine
from .metrics import RunMetrics, classify_messages
from .paradigms import Paradigm


@dataclass
class MultiGPUSystem:
    """An N-GPU node with a switched PCIe interconnect."""

    n_gpus: int
    protocol: PCIeProtocol
    gpus: list[GPU]
    topology: Topology | None
    finepack_config: FinePackConfig = field(default_factory=FinePackConfig)
    #: Cost of the inter-GPU synchronization barrier per iteration.
    barrier_ns: float = 2_000.0
    #: Optional :class:`~repro.faults.injector.FaultInjector`; when set,
    #: its schedule is armed on the topology at the start of every run.
    fault_injector: object | None = None

    @classmethod
    def build(
        cls,
        n_gpus: int = 4,
        generation: PCIeGeneration = PCIE_GEN4,
        compute: ComputeModel | None = None,
        finepack_config: FinePackConfig | None = None,
        barrier_ns: float = 2_000.0,
        two_level: bool = False,
        topology_kind: str | None = None,
        with_credits: bool = False,
        error_rate: float = 0.0,
        fault_injector: object | None = None,
    ) -> "MultiGPUSystem":
        """Construct the paper's testbed (or a variant).

        ``topology_kind`` selects ``"single_switch"`` (the paper's 4-GPU
        testbed, default), ``"two_level"`` (the projected 16-GPU tree)
        or ``"fully_connected"`` (NVSwitch-class pairwise links); the
        legacy ``two_level`` flag is a shorthand for the second.
        ``error_rate`` is the baseline per-byte corruption probability
        of every link (see :class:`~repro.core.config.FabricConfig`);
        ``fault_injector`` arms a scenario's scheduled faults.
        """
        compute = compute or ComputeModel()
        gpus = [GPU(index=i, compute=compute) for i in range(n_gpus)]
        topology: Topology | None = None
        if n_gpus > 1:
            kind = topology_kind or ("two_level" if two_level else "single_switch")
            try:
                factory = topology_registry.resolve(kind)
            except RegistryError as exc:
                raise ValueError(str(exc)) from None
            topology = factory(
                n_gpus=n_gpus,
                generation=generation,
                with_credits=with_credits,
                error_rate=error_rate,
            )
        return cls(
            n_gpus=n_gpus,
            protocol=PCIeProtocol(generation),
            gpus=gpus,
            topology=topology,
            finepack_config=finepack_config or FinePackConfig(),
            barrier_ns=barrier_ns,
            fault_injector=fault_injector,
        )

    def run(
        self, trace: WorkloadTrace, paradigm: Paradigm, tracer=None
    ) -> RunMetrics:
        """Replay ``trace`` under ``paradigm``; returns run metrics.

        ``tracer`` is an optional :class:`repro.obs.Tracer`: when given,
        the run emits the full structured event stream (kernel spans,
        message lifecycle, per-link serialization, remote-write-queue
        activity, barriers) and -- by default -- checks runtime
        invariants as it goes.  One tracer observes one run.
        """
        if trace.n_gpus != self.n_gpus:
            raise ValueError(
                f"trace is for {trace.n_gpus} GPUs, system has {self.n_gpus}"
            )
        paradigm.attach(self.n_gpus, self.protocol)
        if self.topology is not None:
            self.topology.reset()
        if tracer is not None:
            if self.topology is not None:
                self.topology.set_tracer(tracer)
            for egress in getattr(paradigm, "engines", []):
                egress.tracer = tracer
        if self.fault_injector is not None and self.topology is not None:
            self.fault_injector.arm(self.topology, tracer=tracer)
        engine = Engine(tracer=tracer)
        depacketizers = [
            Depacketizer(
                self.finepack_config,
                drain_bytes_per_ns=g.hbm.drain_rate(),
            )
            for g in self.gpus
        ]
        metrics = RunMetrics(
            workload=trace.name, paradigm=paradigm.name, n_gpus=self.n_gpus
        )

        t = 0.0
        #: id(msg) of messages dropped because no live route remained,
        #: and the human-readable reasons (for DegradedRunError).
        dropped_ids: set[int] = set()
        degraded_reasons: list[str] = []
        n_iters = trace.n_iterations
        for k, iteration in enumerate(trace.iterations):
            compute_end = {
                p.gpu: t + self.gpus[p.gpu].kernel_time_ns(p.work)
                for p in iteration.phases
            }
            if tracer is not None:
                releases = hasattr(paradigm, "engines")
                for gpu in sorted(compute_end):
                    tracer.kernel(gpu, t, compute_end[gpu], iteration=k)
                    if releases:
                        tracer.fence_release(gpu, compute_end[gpu])
            # Data produced in iteration k is consumed in iteration k+1;
            # the final iteration reuses its own read set as the
            # steady-state consumer.
            consumer_iter = trace.iterations[min(k + 1, n_iters - 1)]
            consumer_reads: dict[int, IntervalSet] = {
                p.gpu: p.reads for p in consumer_iter.phases
            }

            per_pair: dict[tuple[int, int], list[WireMessage]] = {}
            all_msgs: list[WireMessage] = []
            for phase in iteration.phases:
                msgs = paradigm.phase_messages(
                    phase, t, compute_end[phase.gpu], consumer_reads
                )
                for m in msgs:
                    per_pair.setdefault((m.src, m.dst), []).append(m)
                all_msgs.append(msgs)
            all_msgs = [m for msgs in all_msgs for m in msgs]

            completions = [t]

            def inject(msg: WireMessage) -> None:
                assert self.topology is not None
                msg_id = (
                    tracer.message_injected(msg, engine.now)
                    if tracer is not None
                    else None
                )
                try:
                    delivered = self.topology.route(msg, engine.now)
                except RouteBlockedError as exc:
                    # Graceful degradation: the destination is
                    # unreachable.  Drop the message, keep accounts
                    # balanced, and finish the iteration so the run
                    # ends with partial metrics instead of hanging.
                    dropped_ids.add(id(msg))
                    metrics.faults.dropped_messages += 1
                    metrics.faults.dropped_bytes += msg.payload_bytes
                    degraded_reasons.append(str(exc))
                    if msg_id is not None:
                        tracer.message_dropped(msg_id, msg, engine.now)
                    return
                if msg.kind is MessageKind.FINEPACK:
                    drained = depacketizers[msg.dst].admit(
                        msg.meta["packet"], delivered
                    )
                else:
                    drained = delivered + msg.payload_bytes / self.gpus[
                        msg.dst
                    ].hbm.drain_rate()
                completions.append(drained)
                metrics.packets.record(msg)
                if msg_id is not None:
                    tracer.message_delivered(msg_id, msg, delivered)
                    tracer.message_drained(msg_id, msg, drained)

            for m in sorted(all_msgs, key=lambda m: m.issue_time):
                engine.schedule(m.issue_time, inject, m)
            engine.run()

            iteration_end = (
                max(max(compute_end.values()), max(completions)) + self.barrier_ns
            )
            metrics.compute_time_ns += max(compute_end.values()) - t

            for (src, dst), msgs in per_pair.items():
                if dropped_ids:
                    msgs = [m for m in msgs if id(m) not in dropped_ids]
                    if not msgs:
                        continue
                src_phase = iteration.phases[src]
                footprint = src_phase.stores.for_dst(dst).footprint()
                if src_phase.atomics.count:
                    footprint = footprint.union(
                        src_phase.atomics.for_dst(dst).footprint()
                    )
                # Software-aggregated DMA staging buffers are genuinely
                # written by the producer in full.
                staged = [
                    t
                    for t in src_phase.dma
                    if t.dst == dst and t.aggregated
                ]
                if staged:
                    footprint = footprint.union(
                        IntervalSet.from_ranges(
                            [t.dst_addr for t in staged],
                            [t.nbytes for t in staged],
                        )
                    )
                metrics.bytes.add(
                    classify_messages(
                        msgs, footprint, consumer_reads.get(dst, IntervalSet.empty())
                    )
                )

            if tracer is not None:
                tracer.barrier(k, iteration_end - self.barrier_ns, iteration_end)
                tracer.iteration(k, t, iteration_end)
            metrics.iteration_times_ns.append(iteration_end - t)
            t = iteration_end
            if degraded_reasons:
                # The fabric lost a destination this iteration; the
                # remaining iterations would only replay the same drops.
                break

        metrics.total_time_ns = t
        self._collect_fabric_stats(metrics, t)
        if tracer is not None:
            if self.topology is not None:
                self.topology.set_tracer(None)
            tracer.finish()
        if degraded_reasons:
            metrics.degraded = True
            # Deduplicate while preserving first-seen order.
            reasons = tuple(dict.fromkeys(degraded_reasons))
            raise DegradedRunError(
                f"run degraded after iteration {len(metrics.iteration_times_ns) - 1}: "
                f"{metrics.faults.dropped_messages} message(s) undeliverable",
                metrics=metrics,
                reasons=reasons,
            )
        return metrics

    def _collect_fabric_stats(self, metrics: RunMetrics, total_ns: float) -> None:
        """Fold per-link counters into the run's fault/link accounting."""
        if self.topology is None:
            return
        faults = metrics.faults
        faults.rerouted_messages += self.topology.rerouted_messages
        for (a, b), stats in self.topology.all_stats().items():
            name = f"{a}->{b}"
            if total_ns > 0:
                metrics.links.by_link[name] = stats.busy_time_ns / total_ns
            faults.replays += stats.replays
            faults.replay_bytes += stats.replay_bytes
            faults.replay_saturations += stats.replay_saturations
            faults.retransmits += stats.retransmits
            faults.fault_stall_ns += stats.fault_stall_ns
            metrics.link_stats[name] = {
                "messages": stats.messages,
                "wire_bytes": stats.wire_bytes,
                "busy_time_ns": stats.busy_time_ns,
                "utilization": stats.busy_time_ns / total_ns if total_ns > 0 else 0.0,
                **stats.fault_summary(),
            }
