"""Discrete-event simulation kernel.

A minimal, deterministic event engine: events are (time, sequence,
callback) triples in a heap; ties in time break by scheduling order so
runs are exactly reproducible.  The multi-GPU system schedules message
injections, kernel completions and barrier checks through it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..perf.config import get_perf_config

# Events are plain (time, seq, fn, args) tuples: tuple comparison stays
# in C, and the seq tiebreaker both keeps ordering deterministic and
# prevents comparisons ever reaching the callable.


class Engine:
    """A deterministic discrete-event engine.

    ``tracer`` is an optional :class:`repro.obs.Tracer`; when present
    its :meth:`~repro.obs.Tracer.engine_step` hook runs after every
    processed event (the invariant checker uses it to assert monotonic
    engine time).  The ``None`` default keeps the hot loop to a single
    pointer comparison.
    """

    def __init__(self, tracer=None) -> None:
        self._heap: list[tuple[float, int, Callable[..., Any], tuple]] = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0
        self._tracer = tracer
        self._fast = get_perf_config().batch_events

    def schedule(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at simulated ``time``.

        Scheduling in the past is a logic error and raises immediately
        rather than silently warping time.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} ns; current time is {self.now} ns"
            )
        heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1

    def schedule_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        self.schedule(self.now + delay, fn, *args)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Process one event; returns False when the heap is empty."""
        if not self._heap:
            return False
        time, _, fn, args = heapq.heappop(self._heap)
        self.now = time
        if self._tracer is not None:
            self._tracer.engine_step(time)
        fn(*args)
        self.events_processed += 1
        return True

    def run(self, until: float | None = None) -> float:
        """Drain events (up to ``until`` if given); returns final time."""
        if until is None and self._tracer is None and self._fast:
            # Inlined drain loop: same pops in the same order, without
            # the per-event method-call and tracer/until checks.
            heap = self._heap
            pop = heapq.heappop
            processed = 0
            while heap:
                time, _, fn, args = pop(heap)
                self.now = time
                fn(*args)
                processed += 1
            self.events_processed += processed
            return self.now
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return self.now
            self.step()
        return self.now

    def reset(self) -> None:
        self._heap.clear()
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0
