"""Parameter-sweep utility.

The paper's sensitivity studies (Figs. 12 and 13) and our extension
ablations all share the same structure: trace once, replay under a grid
of configurations, report speedups against the single-GPU baseline.
:func:`sweep` captures that pattern for the benches, the CLI, and
downstream users.

.. deprecated::
   :func:`sweep` runs arbitrary ``(system, paradigm)`` factories
   in-process and is kept for source compatibility.  Sweeps that can
   be described declaratively should build a grid of
   :class:`repro.run.RunSpec` and use :func:`repro.run.labeled_sweep`,
   which adds process-parallel execution (``jobs=N``) and the shared
   content-addressed trace cache while producing the same
   :class:`SweepResult` shape (identical ``best()`` tie-breaks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..interconnect.pcie import PCIeGeneration
from ..trace.stream import WorkloadTrace
from .metrics import RunMetrics
from .paradigms import Paradigm, make_paradigm
from .system import MultiGPUSystem


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep result."""

    label: str
    metrics: RunMetrics
    speedup: float


@dataclass
class SweepResult:
    workload: str
    points: list[SweepPoint] = field(default_factory=list)

    def by_label(self) -> dict[str, SweepPoint]:
        return {p.label: p for p in self.points}

    def best(self) -> SweepPoint:
        """The maximum-speedup point; exact ties break by label.

        The stable lexicographic tie-break keeps the result independent
        of the insertion order of the ``configurations`` dict.
        """
        if not self.points:
            raise ValueError("empty sweep")
        top = max(p.speedup for p in self.points)
        return min(
            (p for p in self.points if p.speedup == top), key=lambda p: p.label
        )


def single_gpu_time(workload, iterations: int = 2, seed: int = 7) -> float:
    """Baseline time for speedup normalization."""
    trace = workload.generate_trace(n_gpus=1, iterations=iterations, seed=seed)
    system = MultiGPUSystem.build(n_gpus=1)
    return system.run(trace, make_paradigm("infinite")).total_time_ns


def sweep(
    workload,
    configurations: dict[str, Callable[[], tuple[MultiGPUSystem, Paradigm]]],
    n_gpus: int = 4,
    iterations: int = 2,
    seed: int = 7,
    trace: WorkloadTrace | None = None,
    tracer_factory: Callable[[str], object] | None = None,
) -> SweepResult:
    """Replay one trace under each (system, paradigm) configuration.

    ``configurations`` maps a label to a zero-argument factory so each
    point gets fresh simulator state; the trace is generated once.

    ``tracer_factory`` optionally maps each label to a fresh
    :class:`repro.obs.Tracer` (or ``None``) so individual sweep points
    can be traced; the caller keeps the tracers it hands out (see
    ``repro sweep --trace-out``).
    """
    if trace is None:
        trace = workload.generate_trace(
            n_gpus=n_gpus, iterations=iterations, seed=seed
        )
    t1 = single_gpu_time(workload, iterations=iterations, seed=seed)
    result = SweepResult(workload=workload.name)
    for label, factory in configurations.items():
        system, paradigm = factory()
        point_tracer = tracer_factory(label) if tracer_factory is not None else None
        metrics = system.run(trace, paradigm, tracer=point_tracer)
        result.points.append(
            SweepPoint(
                label=label, metrics=metrics, speedup=t1 / metrics.total_time_ns
            )
        )
    return result


def generation_sweep(
    workload,
    generations: dict[str, PCIeGeneration],
    paradigm_name: str = "finepack",
    **kwargs,
) -> SweepResult:
    """Convenience wrapper for the Figure 13 pattern."""
    configurations = {
        label: (
            lambda g=gen: (
                MultiGPUSystem.build(n_gpus=kwargs.get("n_gpus", 4), generation=g),
                make_paradigm(paradigm_name),
            )
        )
        for label, gen in generations.items()
    }
    return sweep(workload, configurations, **kwargs)
