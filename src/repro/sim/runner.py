"""High-level experiment runner.

Convenience entry points the examples and benchmarks build on:

* :func:`run_workload` -- trace one workload and replay it under one
  paradigm.
* :func:`compare_paradigms` -- the paper's core experiment: trace once,
  replay under every paradigm plus the single-GPU baseline, and report
  speedups (Figure 9), byte breakdowns (Figure 10) and coalescing
  statistics (Figure 11).

Traces are generated once per (workload, GPU count, seed) and shared
across paradigms, exactly like replaying one NVBit trace through
different simulator configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import FabricConfig, FinePackConfig
from ..gpu.compute import ComputeModel
from ..interconnect.pcie import PCIE_GEN4, PCIeGeneration
from ..trace.stream import WorkloadTrace
from .metrics import RunMetrics
from .paradigms import FinePackParadigm, Paradigm, make_paradigm
from .system import MultiGPUSystem

#: The four bars of the paper's Figure 9.
FIGURE9_PARADIGMS = ("p2p", "dma", "finepack", "infinite")


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment entry points."""

    n_gpus: int = 4
    iterations: int = 3
    seed: int = 7
    generation: PCIeGeneration = PCIE_GEN4
    finepack_config: FinePackConfig = field(default_factory=FinePackConfig)
    compute: ComputeModel = field(default_factory=ComputeModel)
    barrier_ns: float = 2_000.0
    two_level: bool = False
    fabric: FabricConfig = field(default_factory=FabricConfig)


def build_system(config: ExperimentConfig, n_gpus: int | None = None) -> MultiGPUSystem:
    return MultiGPUSystem.build(
        n_gpus=config.n_gpus if n_gpus is None else n_gpus,
        generation=config.generation,
        compute=config.compute,
        finepack_config=config.finepack_config,
        barrier_ns=config.barrier_ns,
        two_level=config.two_level,
        error_rate=config.fabric.error_rate,
    )


def _paradigm_instance(name_or_obj: str | Paradigm, config: ExperimentConfig) -> Paradigm:
    if isinstance(name_or_obj, Paradigm):
        return name_or_obj
    if name_or_obj == "finepack":
        return FinePackParadigm(config.finepack_config)
    return make_paradigm(name_or_obj)


def run_workload(
    workload,
    paradigm: str | Paradigm,
    config: ExperimentConfig | None = None,
    trace: WorkloadTrace | None = None,
    tracer=None,
) -> RunMetrics:
    """Trace ``workload`` (unless a trace is supplied) and replay it.

    ``tracer`` is an optional :class:`repro.obs.Tracer` observing the
    replay (see :mod:`repro.obs`).
    """
    config = config or ExperimentConfig()
    if trace is None:
        trace = workload.generate_trace(
            n_gpus=config.n_gpus, iterations=config.iterations, seed=config.seed
        )
    system = build_system(config, n_gpus=trace.n_gpus)
    return system.run(trace, _paradigm_instance(paradigm, config), tracer=tracer)


@dataclass
class ComparisonResult:
    """All paradigms' metrics for one workload, plus the 1-GPU baseline."""

    workload: str
    single_gpu: RunMetrics
    runs: dict[str, RunMetrics]

    def speedup(self, paradigm: str) -> float:
        """Multi-GPU speedup over the single-GPU baseline (Figure 9)."""
        run = self.runs[paradigm]
        return self.single_gpu.total_time_ns / run.total_time_ns

    def speedups(self) -> dict[str, float]:
        return {name: self.speedup(name) for name in self.runs}

    def bytes_normalized_to(self, reference: str = "dma") -> dict[str, dict[str, float]]:
        """Byte breakdowns normalized to a reference paradigm (Figure 10)."""
        ref_total = self.runs[reference].bytes.total
        if ref_total == 0:
            raise ValueError(f"reference paradigm {reference!r} moved no bytes")
        out: dict[str, dict[str, float]] = {}
        for name, run in self.runs.items():
            b = run.bytes
            out[name] = {
                "useful": b.useful / ref_total,
                "protocol_overhead": b.overhead / ref_total,
                "wasted": b.wasted / ref_total,
                "total": b.total / ref_total,
            }
        return out


def compare_paradigms(
    workload,
    paradigms: tuple[str, ...] = FIGURE9_PARADIGMS,
    config: ExperimentConfig | None = None,
) -> ComparisonResult:
    """Run the paper's core comparison for one workload."""
    config = config or ExperimentConfig()
    multi_trace = workload.generate_trace(
        n_gpus=config.n_gpus, iterations=config.iterations, seed=config.seed
    )
    single_trace = workload.generate_trace(
        n_gpus=1, iterations=config.iterations, seed=config.seed
    )
    single_system = build_system(config, n_gpus=1)
    single = single_system.run(single_trace, make_paradigm("infinite"))

    runs: dict[str, RunMetrics] = {}
    for name in paradigms:
        system = build_system(config, n_gpus=config.n_gpus)
        instance = _paradigm_instance(name, config)
        runs[instance.name] = system.run(multi_trace, instance)
    return ComparisonResult(workload=workload.name, single_gpu=single, runs=runs)


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's cross-workload aggregate)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean needs positive values, got {values}")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
