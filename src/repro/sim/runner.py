"""High-level experiment runner (legacy shim over :mod:`repro.run`).

Convenience entry points the examples and benchmarks build on:

* :func:`run_workload` -- trace one workload and replay it under one
  paradigm.
* :func:`compare_paradigms` -- the paper's core experiment: trace once,
  replay under every paradigm plus the single-GPU baseline, and report
  speedups (Figure 9), byte breakdowns (Figure 10) and coalescing
  statistics (Figure 11).  Accepts ``jobs=N`` to fan the paradigm
  replays over worker processes.

.. deprecated::
   These helpers are thin shims kept for source compatibility.  New
   code should build a :class:`repro.run.RunSpec` and execute it
   through :class:`repro.run.RunContext` / :func:`repro.run.execute_grid`
   directly -- that is where configuration knobs are plumbed now.

Traces are generated once per (workload, GPU count, seed) and shared
across paradigms through the content-addressed
:class:`repro.run.TraceCache`, exactly like replaying one NVBit trace
through different simulator configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import FabricConfig, FinePackConfig
from ..gpu.compute import ComputeModel
from ..interconnect.pcie import PCIE_GEN4, PCIeGeneration
from ..trace.stream import WorkloadTrace
from .metrics import RunMetrics
from .paradigms import Paradigm
from .system import MultiGPUSystem

#: The four bars of the paper's Figure 9.
FIGURE9_PARADIGMS = ("p2p", "dma", "finepack", "infinite")


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Knobs shared by all experiment entry points.

    Frozen: a config can be shared across sweep cells and worker
    processes without any cell observing another's mutations.  Use
    :func:`dataclasses.replace` (or build a new one) to vary a knob.
    """

    n_gpus: int = 4
    iterations: int = 3
    seed: int = 7
    generation: PCIeGeneration = PCIE_GEN4
    finepack_config: FinePackConfig = field(default_factory=FinePackConfig)
    compute: ComputeModel = field(default_factory=ComputeModel)
    barrier_ns: float = 2_000.0
    two_level: bool = False
    fabric: FabricConfig = field(default_factory=FabricConfig)
    #: Topology registry kind (overrides ``two_level`` when set) plus
    #: factory keywords, normalized to a sorted tuple like
    #: :data:`repro.run.spec.Params`.
    topology: str | None = None
    topology_params: tuple = ()
    #: Execution fidelity: ``"des"`` or ``"analytical"`` (see
    #: :attr:`repro.run.RunSpec.fidelity`).
    fidelity: str = "des"

    def spec_fields(self) -> dict:
        """This config as :class:`repro.run.RunSpec` field values."""
        return {
            "n_gpus": self.n_gpus,
            "iterations": self.iterations,
            "seed": self.seed,
            "generation": self.generation,
            "finepack": self.finepack_config,
            "fabric": self.fabric,
            "compute": self.compute,
            "barrier_ns": self.barrier_ns,
            "topology": self.topology
            or ("two_level" if self.two_level else None),
            "topology_params": self.topology_params,
            "fidelity": self.fidelity,
        }


def _base_spec(workload, config: ExperimentConfig, paradigm: str = "finepack"):
    """Best-effort spec for ``workload``; ``None`` if it has no registry
    identity (ad-hoc workload classes run through in-process overrides)."""
    from ..run import RunSpec

    try:
        return RunSpec.for_workload(workload, paradigm, **config.spec_fields())
    except (ValueError, TypeError, KeyError):
        return None


def _override_spec(workload, config: ExperimentConfig, paradigm_name: str):
    """Spec scaffold for unregistered workloads (never registry-resolved)."""
    from ..run import RunSpec

    return RunSpec(
        workload=getattr(workload, "name", None) or "custom",
        paradigm=paradigm_name,
        **config.spec_fields(),
    )


def build_system(config: ExperimentConfig, n_gpus: int | None = None) -> MultiGPUSystem:
    """Construct the system a config describes (legacy helper)."""
    return MultiGPUSystem.build(
        n_gpus=config.n_gpus if n_gpus is None else n_gpus,
        generation=config.generation,
        compute=config.compute,
        finepack_config=config.finepack_config,
        barrier_ns=config.barrier_ns,
        two_level=config.two_level,
        topology_kind=config.topology,
        topology_params=dict(config.topology_params),
        error_rate=config.fabric.error_rate,
    )


def _paradigm_instance(name_or_obj: str | Paradigm, config: ExperimentConfig) -> Paradigm:
    if isinstance(name_or_obj, Paradigm):
        return name_or_obj
    from ..run import RunSpec

    return RunSpec(
        workload="_paradigm_lookup",  # never resolved; only build_paradigm runs
        paradigm=name_or_obj,
        finepack=config.finepack_config,
    ).build_paradigm()


def run_workload(
    workload,
    paradigm: str | Paradigm,
    config: ExperimentConfig | None = None,
    trace: WorkloadTrace | None = None,
    tracer=None,
) -> RunMetrics:
    """Trace ``workload`` (unless a trace is supplied) and replay it.

    ``tracer`` is an optional :class:`repro.obs.Tracer` observing the
    replay (see :mod:`repro.obs`).
    """
    from ..run import RunContext

    config = config or ExperimentConfig()
    paradigm_name = paradigm if isinstance(paradigm, str) else paradigm.name
    spec = _base_spec(workload, config, paradigm_name) or _override_spec(
        workload, config, paradigm_name
    )
    if trace is not None:
        # An explicit trace wins over the config's GPU count, exactly
        # like the old runner sized the system from the trace.
        spec = spec.with_options(n_gpus=trace.n_gpus)
    ctx = RunContext(
        spec,
        workload=None if isinstance(workload, (str, type)) else workload,
        trace=trace,
        paradigm=paradigm if isinstance(paradigm, Paradigm) else None,
        tracer=tracer,
    )
    return ctx.run()


@dataclass
class ComparisonResult:
    """All paradigms' metrics for one workload, plus the 1-GPU baseline."""

    workload: str
    single_gpu: RunMetrics
    runs: dict[str, RunMetrics]
    #: Aggregate trace-cache traffic when run through the grid
    #: executor; ``None`` on the in-process fallback path.
    cache_stats: dict | None = field(default=None, compare=False)

    def speedup(self, paradigm: str) -> float:
        """Multi-GPU speedup over the single-GPU baseline (Figure 9)."""
        run = self.runs[paradigm]
        return self.single_gpu.total_time_ns / run.total_time_ns

    def speedups(self) -> dict[str, float]:
        return {name: self.speedup(name) for name in self.runs}

    def bytes_normalized_to(self, reference: str = "dma") -> dict[str, dict[str, float]]:
        """Byte breakdowns normalized to a reference paradigm (Figure 10)."""
        ref_total = self.runs[reference].bytes.total
        if ref_total == 0:
            raise ValueError(f"reference paradigm {reference!r} moved no bytes")
        out: dict[str, dict[str, float]] = {}
        for name, run in self.runs.items():
            b = run.bytes
            out[name] = {
                "useful": b.useful / ref_total,
                "protocol_overhead": b.overhead / ref_total,
                "wasted": b.wasted / ref_total,
                "total": b.total / ref_total,
            }
        return out


def compare_paradigms(
    workload,
    paradigms: tuple[str, ...] = FIGURE9_PARADIGMS,
    config: ExperimentConfig | None = None,
    jobs: int = 1,
    trace_cache=None,
    **resilience,
) -> ComparisonResult:
    """Run the paper's core comparison for one workload.

    With ``jobs > 1`` the baseline and the paradigm replays fan out
    over worker processes (registered workloads and named paradigms
    only); results are identical to the serial run.  Extra keyword
    arguments (``timeout``, ``retries``, ``journal``, ``resume``,
    ``outcome_store``) forward to :func:`repro.run.execute_grid`; the
    comparison always runs strict -- every paradigm column is needed.
    """
    from ..run import RunContext, aggregate_cache_stats, execute_grid

    config = config or ExperimentConfig()
    base = _base_spec(workload, config)
    spec_mode = base is not None and all(isinstance(p, str) for p in paradigms)

    if spec_mode:
        resilience.pop("strict", None)
        specs = [base.single_gpu_baseline()]
        specs += [base.with_options(paradigm=p) for p in paradigms]
        outcomes = execute_grid(
            specs, jobs=jobs, trace_cache=trace_cache, **resilience
        )
        single = outcomes[0].metrics
        runs = {o.spec.paradigm: o.metrics for o in outcomes[1:]}
        return ComparisonResult(
            workload=base.workload,
            single_gpu=single,
            runs=runs,
            cache_stats=aggregate_cache_stats(outcomes),
        )

    # In-process fallback: ad-hoc workloads / pre-built paradigm objects.
    single_spec = _override_spec(workload, config, "infinite").single_gpu_baseline()
    single = RunContext(single_spec, workload=workload).run()
    trace = workload.generate_trace(
        n_gpus=config.n_gpus, iterations=config.iterations, seed=config.seed
    )
    runs: dict[str, RunMetrics] = {}
    for p in paradigms:
        instance = _paradigm_instance(p, config)
        spec = _override_spec(workload, config, instance.name)
        runs[instance.name] = RunContext(
            spec, workload=workload, trace=trace, paradigm=instance
        ).run()
    return ComparisonResult(
        workload=workload.name, single_gpu=single, runs=runs
    )


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's cross-workload aggregate)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean needs positive values, got {values}")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
