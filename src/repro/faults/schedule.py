"""Declarative fault scenarios: typed, time-windowed fault events.

A :class:`FaultSchedule` is the *policy* half of the fault subsystem: a
validated, immutable list of fault events parsed from a plain dict (or
JSON file) describing *what* goes wrong on the fabric and *when*.  The
:class:`~repro.faults.injector.FaultInjector` compiles a schedule into
per-link runtime state (:mod:`repro.faults.state`) when a simulation
starts.

Scenario schema
---------------

.. code-block:: json

    {
      "name": "flaky-retimer",
      "description": "one GPU uplink flaps and suffers CRC bursts",
      "topology": "single_switch",
      "with_credits": true,
      "faults": [
        {"type": "link_flap", "link": "gpu0->sw0",
         "start_ns": 100000, "end_ns": 220000},
        {"type": "crc_burst", "link": "gpu0->sw0",
         "start_ns": 0, "end_ns": 1000000, "error_rate": 2e-5}
      ]
    }

``link`` is an ``fnmatch`` pattern over link names (``"gpu0->sw0"``,
``"*->sw0"``, ``"*"``).  ``topology`` / ``with_credits`` are optional
hints the chaos CLI uses to build a system the scenario is meaningful
on (e.g. ``link_fail`` scenarios need a topology with an alternate
path to demonstrate rerouting).

Fault types
-----------

==================  =============================================================
``link_degrade``    bandwidth x ``factor`` during the window (lane retraining)
``link_flap``       link down during the window; senders retransmit with backoff
``link_fail``       link permanently down from ``start_ns``
``crc_burst``       per-byte corruption probability +``error_rate`` in the window
``drain_slowdown``  receiver drain rate x ``factor``: credits return slowly
``credit_leak``     ``leak_bytes`` of receiver buffer vanish during the window
==================  =============================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from fnmatch import fnmatch
from typing import Iterator

from .errors import ScenarioError
from .state import FOREVER, Window


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """Base class: one scheduled fault on links matching ``link``."""

    link: str
    start_ns: float

    #: JSON ``type`` tag; set by each concrete subclass.
    kind = "fault"

    def __post_init__(self) -> None:
        if not self.link:
            raise ScenarioError("fault needs a non-empty 'link' pattern")
        if self.start_ns < 0:
            raise ScenarioError(f"fault starts before t=0: {self.start_ns}")

    @property
    def end_ns(self) -> float:
        return FOREVER

    def matches(self, link_name: str) -> bool:
        return fnmatch(link_name, self.link)

    def scaled(self, intensity: float) -> "FaultEvent | None":
        """This fault at a given intensity in [0, 1]; ``None`` drops it."""
        return self if intensity > 0 else None

    def to_dict(self) -> dict:
        out: dict = {"type": self.kind}
        for f in fields(self):
            v = getattr(self, f.name)
            if v != FOREVER:
                out[f.name] = v
        return out


@dataclass(frozen=True, slots=True)
class _WindowedFault(FaultEvent):
    """A fault active over a finite-or-infinite [start_ns, end_ns)."""

    end_ns: float = FOREVER  # type: ignore[misc]

    # Parent validation is invoked by explicit class reference: the
    # slots=True dataclass decorator rebuilds each class, so zero-arg
    # super() (whose __class__ cell still points at the pre-slots
    # class) raises TypeError inside these methods.
    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.end_ns <= self.start_ns:
            raise ScenarioError(
                f"{self.kind}: empty window [{self.start_ns}, {self.end_ns})"
            )

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True, slots=True)
class LinkDegrade(_WindowedFault):
    """Bandwidth multiplied by ``factor`` (models x16->x8->x4 retraining)."""

    factor: float = 0.5
    kind = "link_degrade"

    def __post_init__(self) -> None:
        _WindowedFault.__post_init__(self)
        if not 0.0 < self.factor <= 1.0:
            raise ScenarioError(f"link_degrade factor must be in (0, 1]: {self.factor}")

    def scaled(self, intensity: float) -> "LinkDegrade | None":
        if intensity <= 0:
            return None
        return replace(self, factor=1.0 - intensity * (1.0 - self.factor))


@dataclass(frozen=True, slots=True)
class LinkFlap(_WindowedFault):
    """Link down for a finite window; traffic retries with backoff."""

    kind = "link_flap"

    def __post_init__(self) -> None:
        _WindowedFault.__post_init__(self)
        if self.end_ns == FOREVER:
            raise ScenarioError("link_flap needs a finite end_ns (use link_fail)")

    def scaled(self, intensity: float) -> "LinkFlap | None":
        if intensity <= 0:
            return None
        return replace(self, end_ns=self.start_ns + intensity * self.duration_ns)


@dataclass(frozen=True, slots=True)
class LinkFail(FaultEvent):
    """Link permanently down from ``start_ns`` onward.

    Cannot be meaningfully attenuated, so intensity scaling keeps it
    only at full intensity (>= 1); partial-intensity sweep points see
    the other faults without the hard failure.
    """

    kind = "link_fail"

    def scaled(self, intensity: float) -> "LinkFail | None":
        return self if intensity >= 1.0 else None


@dataclass(frozen=True, slots=True)
class CrcBurst(_WindowedFault):
    """Per-byte corruption probability raised by ``error_rate``."""

    error_rate: float = 1e-5
    kind = "crc_burst"

    def __post_init__(self) -> None:
        _WindowedFault.__post_init__(self)
        if not 0.0 <= self.error_rate < 1.0:
            raise ScenarioError(
                f"crc_burst error_rate must be in [0, 1): {self.error_rate}"
            )

    def scaled(self, intensity: float) -> "CrcBurst | None":
        if intensity <= 0:
            return None
        return replace(self, error_rate=intensity * self.error_rate)


@dataclass(frozen=True, slots=True)
class DrainSlowdown(_WindowedFault):
    """Receiver ``drain_bytes_per_ns`` multiplied by ``factor``."""

    factor: float = 0.25
    kind = "drain_slowdown"

    def __post_init__(self) -> None:
        _WindowedFault.__post_init__(self)
        if self.factor <= 0:
            raise ScenarioError(f"drain_slowdown factor must be > 0: {self.factor}")
        if self.end_ns == FOREVER:
            raise ScenarioError("drain_slowdown needs a finite end_ns")

    def scaled(self, intensity: float) -> "DrainSlowdown | None":
        if intensity <= 0:
            return None
        return replace(self, factor=1.0 - intensity * (1.0 - min(self.factor, 1.0)))


@dataclass(frozen=True, slots=True)
class CreditLeak(_WindowedFault):
    """``leak_bytes`` of receiver buffer unavailable during the window."""

    leak_bytes: int = 1024
    kind = "credit_leak"

    def __post_init__(self) -> None:
        _WindowedFault.__post_init__(self)
        if self.leak_bytes < 0:
            raise ScenarioError(f"credit_leak leak_bytes must be >= 0: {self.leak_bytes}")
        if self.end_ns == FOREVER:
            raise ScenarioError("credit_leak needs a finite end_ns")

    def scaled(self, intensity: float) -> "CreditLeak | None":
        if intensity <= 0:
            return None
        return replace(self, leak_bytes=int(round(intensity * self.leak_bytes)))


#: JSON ``type`` tag -> event class.
FAULT_TYPES: dict[str, type[FaultEvent]] = {
    cls.kind: cls
    for cls in (LinkDegrade, LinkFlap, LinkFail, CrcBurst, DrainSlowdown, CreditLeak)
}


@dataclass(frozen=True, slots=True)
class FaultSchedule:
    """A validated, ordered collection of fault events.

    Attributes
    ----------
    faults:
        The events, sorted by (start_ns, link, kind) so iteration order
        -- and therefore everything downstream -- is deterministic.
    name, description:
        Scenario identity for reports and trace metadata.
    topology, with_credits:
        Optional system-construction hints for the chaos CLI.
    """

    faults: tuple[FaultEvent, ...] = ()
    name: str = "scenario"
    description: str = ""
    topology: str | None = None
    with_credits: bool = True

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.start_ns, f.link, f.kind))
        )
        object.__setattr__(self, "faults", ordered)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def for_link(self, link_name: str) -> list[FaultEvent]:
        """Events whose pattern matches one concrete link name."""
        return [f for f in self.faults if f.matches(link_name)]

    def scaled(self, intensity: float) -> "FaultSchedule":
        """The schedule attenuated/amplified to ``intensity`` in [0, 1].

        0 yields an empty (fault-free) schedule; 1 yields the schedule
        as written.  Per-type semantics are documented on each event's
        ``scaled`` method.
        """
        if intensity < 0:
            raise ScenarioError(f"intensity must be >= 0: {intensity}")
        kept = tuple(
            s for f in self.faults if (s := f.scaled(intensity)) is not None
        )
        return replace(self, faults=kept)

    # -- (de)serialization ------------------------------------------

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultSchedule":
        if not isinstance(raw, dict):
            raise ScenarioError(f"scenario must be an object, got {type(raw).__name__}")
        unknown = set(raw) - {"name", "description", "topology", "with_credits", "faults"}
        if unknown:
            raise ScenarioError(f"unknown scenario keys: {sorted(unknown)}")
        events = []
        raw_faults = raw.get("faults", [])
        if not isinstance(raw_faults, list):
            raise ScenarioError("'faults' must be a list")
        for i, spec in enumerate(raw_faults):
            if not isinstance(spec, dict):
                raise ScenarioError(f"faults[{i}] is not an object")
            spec = dict(spec)
            kind = spec.pop("type", None)
            fault_cls = FAULT_TYPES.get(kind)
            if fault_cls is None:
                raise ScenarioError(
                    f"faults[{i}]: unknown fault type {kind!r}; "
                    f"known: {sorted(FAULT_TYPES)}"
                )
            try:
                events.append(fault_cls(**spec))
            except TypeError as exc:
                raise ScenarioError(f"faults[{i}] ({kind}): {exc}") from exc
        return cls(
            faults=tuple(events),
            name=raw.get("name", "scenario"),
            description=raw.get("description", ""),
            topology=raw.get("topology"),
            with_credits=raw.get("with_credits", True),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(raw)

    @classmethod
    def from_file(cls, path: str) -> "FaultSchedule":
        with open(path) as f:
            return cls.from_json(f.read())

    def to_dict(self) -> dict:
        out: dict = {"name": self.name}
        if self.description:
            out["description"] = self.description
        if self.topology:
            out["topology"] = self.topology
        out["with_credits"] = self.with_credits
        out["faults"] = [f.to_dict() for f in self.faults]
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
