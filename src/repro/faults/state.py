"""Runtime fault state armed on interconnect components.

This module is the *mechanism* half of the fault subsystem: small,
dependency-free state objects that a :class:`~repro.faults.injector.
FaultInjector` attaches to :class:`~repro.interconnect.link.Link` and
:class:`~repro.interconnect.flowcontrol.CreditPool` instances.  The
link/pool hot paths consult them at transmit/commit time, so faults
cost nothing when no scenario is armed (a single ``is None`` check).

Everything here is deterministic: down-time recovery is modelled as a
timeout-driven retransmit with exponential backoff (attempts at
``t + T``, ``t + 3T``, ``t + 7T`` ... for timeout ``T``), so the same
schedule always yields the same timing, and every finite fault window
is escaped in a bounded number of attempts.

The module deliberately imports nothing from the rest of ``repro`` so
the interconnect layer can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Sentinel end time for permanent faults (``LinkFail``).
FOREVER = float("inf")


class FaultError(RuntimeError):
    """Base class for fault-subsystem runtime errors."""


class LinkDownError(FaultError):
    """A link could not carry a message (down window not escaped).

    Raised by :meth:`LinkFaultState.admit` when the link is permanently
    down at the attempt time, or when the retransmit budget is exhausted
    waiting out a (long) finite outage.  The topology layer catches it
    and tries to reroute.
    """

    def __init__(self, link_name: str, at_ns: float, permanent: bool) -> None:
        self.link_name = link_name
        self.at_ns = at_ns
        self.permanent = permanent
        what = "permanently down" if permanent else "down (retries exhausted)"
        super().__init__(f"link {link_name} {what} at {at_ns:.1f} ns")


class RouteBlockedError(FaultError):
    """No live path exists between two endpoints.

    Raised by :meth:`~repro.interconnect.topology.Topology.route` when a
    message's link is down and no alternate tree path avoids the dead
    links.  The system layer converts it into a dropped message and,
    at the end of the iteration, a
    :class:`~repro.faults.errors.DegradedRunError`.
    """

    def __init__(self, src: int, dst: int, at_ns: float, dead: tuple[str, ...]) -> None:
        self.src = src
        self.dst = dst
        self.at_ns = at_ns
        self.dead = dead
        super().__init__(
            f"no live path gpu{src}->gpu{dst} at {at_ns:.1f} ns "
            f"(dead links: {', '.join(dead) or 'none'})"
        )


@dataclass(frozen=True, slots=True)
class Window:
    """One active fault interval on one component: [start_ns, end_ns)."""

    start_ns: float
    end_ns: float
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.start_ns < 0:
            raise ValueError(f"fault window starts before t=0: {self.start_ns}")
        if self.end_ns <= self.start_ns:
            raise ValueError(
                f"empty fault window [{self.start_ns}, {self.end_ns})"
            )

    def contains(self, t: float) -> bool:
        return self.start_ns <= t < self.end_ns


@dataclass
class LinkFaultState:
    """All scheduled faults affecting one link direction.

    Parameters
    ----------
    degrade:
        Bandwidth-multiplier windows (``value`` in (0, 1]); overlapping
        windows compound multiplicatively (x16 -> x8 -> x4 retraining).
    down:
        Outage windows (``LinkFlap``); ``end_ns = FOREVER`` is a
        permanent failure (``LinkFail``).
    crc:
        Additional per-byte corruption-probability windows
        (``CrcBurst``); added to the link's base ``error_rate``.
    retry_timeout_ns:
        End-to-end retransmit timeout: a sender whose packet hit a down
        window retries after this delay, doubling it on every attempt.
    max_retries:
        Retransmit attempts before the sender gives up and the message
        escalates to rerouting (:class:`LinkDownError`).
    """

    degrade: tuple[Window, ...] = ()
    down: tuple[Window, ...] = ()
    crc: tuple[Window, ...] = ()
    retry_timeout_ns: float = 1_000.0
    max_retries: int = 10
    #: Down windows already announced via ``link_state_change`` events.
    _announced: set[float] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.retry_timeout_ns <= 0:
            raise ValueError(f"retry_timeout_ns must be positive: {self.retry_timeout_ns}")
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1: {self.max_retries}")
        self.degrade = tuple(sorted(self.degrade, key=lambda w: w.start_ns))
        self.down = tuple(sorted(self.down, key=lambda w: w.start_ns))
        self.crc = tuple(sorted(self.crc, key=lambda w: w.start_ns))
        for w in self.degrade:
            if not 0.0 < w.value <= 1.0:
                raise ValueError(f"degrade factor must be in (0, 1]: {w.value}")
        for w in self.crc:
            if not 0.0 <= w.value < 1.0:
                raise ValueError(f"crc burst rate must be in [0, 1): {w.value}")

    # -- queries -----------------------------------------------------

    def bandwidth_factor(self, t: float) -> float:
        """Effective bandwidth multiplier at ``t`` (compounding)."""
        factor = 1.0
        for w in self.degrade:
            if w.start_ns > t:
                break
            if w.contains(t):
                factor *= w.value
        return factor

    def error_rate_extra(self, t: float) -> float:
        """Additional per-byte corruption probability at ``t``."""
        extra = 0.0
        for w in self.crc:
            if w.start_ns > t:
                break
            if w.contains(t):
                extra += w.value
        return extra

    def has_crc(self) -> bool:
        return bool(self.crc)

    def down_at(self, t: float) -> Window | None:
        for w in self.down:
            if w.start_ns > t:
                break
            if w.contains(t):
                return w
        return None

    def permanently_down_at(self, t: float) -> bool:
        w = self.down_at(t)
        return w is not None and w.end_ns == FOREVER

    def cut_after(self, start: float, end: float) -> Window | None:
        """First down window opening inside (start, end), if any.

        A packet being serialized across that instant is killed by the
        outage and must be retransmitted.
        """
        for w in self.down:
            if w.start_ns >= end:
                break
            if start < w.start_ns:
                return w
        return None

    # -- the retransmit model ---------------------------------------

    def admit(self, t: float, link) -> float:
        """Earliest time >= ``t`` the link will carry a packet.

        Models the sender's end-to-end timeout + retransmit loop: an
        attempt inside a down window is lost; the sender waits
        ``retry_timeout_ns`` (doubling each time) and resends.  Updates
        ``link.stats`` retransmit/stall accounting and announces
        ``link_state_change`` events on ``link.tracer``.

        Raises
        ------
        LinkDownError
            If the window is permanent, or ``max_retries`` attempts did
            not escape it.
        """
        w = self.down_at(t)
        if w is None:
            return t
        stats = link.stats
        retries = 0
        attempt = t
        backoff = self.retry_timeout_ns
        self._announce(link, w)
        while True:
            if w.end_ns == FOREVER:
                stats.retransmits += retries
                stats.fault_stall_ns += attempt - t
                raise LinkDownError(link.name, attempt, permanent=True)
            if retries >= self.max_retries:
                stats.retransmits += retries
                stats.fault_stall_ns += attempt - t
                raise LinkDownError(link.name, attempt, permanent=False)
            retries += 1
            attempt += backoff
            backoff *= 2
            w2 = self.down_at(attempt)
            if w2 is None:
                stats.retransmits += retries
                stats.fault_stall_ns += attempt - t
                return attempt
            if w2 is not w:
                self._announce(link, w2)
                w = w2

    def _announce(self, link, window: Window) -> None:
        """Emit down/up state-change events once per observed window."""
        tracer = getattr(link, "tracer", None)
        if tracer is None or window.start_ns in self._announced:
            return
        self._announced.add(window.start_ns)
        tracer.link_state_change(
            link.name, "down", window.start_ns, until_ns=window.end_ns
        )
        if window.end_ns != FOREVER:
            tracer.link_state_change(link.name, "up", window.end_ns)

    def reset(self) -> None:
        """Forget per-run announcement state (between runs)."""
        self._announced.clear()


@dataclass
class PoolFaultState:
    """Scheduled faults affecting one receiver credit pool.

    Parameters
    ----------
    drain:
        Drain-rate multiplier windows (``DrainSlowdown``; ``value`` > 0,
        compounding): the receiver returns credits more slowly, so the
        transmitter sees sustained back-pressure.
    leak:
        Credit-leak windows (``CreditLeak``; ``value`` = data bytes of
        receiver buffer made unavailable while the window is open).
        Windows must be finite so blocked senders always unblock.
    """

    drain: tuple[Window, ...] = ()
    leak: tuple[Window, ...] = ()

    def __post_init__(self) -> None:
        self.drain = tuple(sorted(self.drain, key=lambda w: w.start_ns))
        self.leak = tuple(sorted(self.leak, key=lambda w: w.start_ns))
        for w in self.drain:
            if w.value <= 0:
                raise ValueError(f"drain factor must be positive: {w.value}")
        for w in self.leak:
            if w.value < 0:
                raise ValueError(f"leak bytes must be non-negative: {w.value}")
            if w.end_ns == FOREVER:
                raise ValueError("credit-leak windows must be finite")

    def drain_factor(self, t: float) -> float:
        factor = 1.0
        for w in self.drain:
            if w.start_ns > t:
                break
            if w.contains(t):
                factor *= w.value
        return factor

    def leaked_bytes(self, t: float) -> int:
        total = 0
        for w in self.leak:
            if w.start_ns > t:
                break
            if w.contains(t):
                total += int(w.value)
        return total

    def leak_relief_after(self, t: float) -> float:
        """Earliest time > ``t`` at which some active leak closes."""
        ends = [w.end_ns for w in self.leak if w.contains(t)]
        if not ends:
            raise RuntimeError(f"no active leak at {t} ns")  # pragma: no cover
        return min(ends)
