"""Chaos sweeps: degradation curves under scaled fault intensity.

:func:`chaos_sweep` replays one workload under every paradigm at a
ladder of fault intensities (``schedule.scaled(i)`` for each point),
measuring how much each communication paradigm's advantage survives a
noisy fabric -- the fault-injection analogue of the paper's Figure 9.
Runs that degrade past the point of completion
(:class:`~repro.faults.errors.DegradedRunError`) are reported as
``DEGRADED`` rows carrying their partial metrics rather than aborting
the sweep.

The sweep is expressed as a :class:`repro.run.RunSpec` grid executed
through :func:`repro.run.execute_grid`, so ``jobs=N`` fans the
(intensity x paradigm) cells over worker processes with results
byte-identical to the serial sweep.  Simulation modules are imported
lazily so ``repro.faults`` stays importable from the interconnect
layer without cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Sequence

from .schedule import FaultSchedule

#: Default intensity ladder for degradation curves.
DEFAULT_INTENSITIES = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Paradigms swept by default (the paper's Figure 9 set minus the
#: idealized infinite-bandwidth baseline).
DEFAULT_PARADIGMS = ("p2p", "dma", "finepack")


@dataclass
class ChaosPoint:
    """One (intensity, paradigm) cell of a chaos sweep."""

    intensity: float
    paradigm: str
    metrics: object  # RunMetrics (partial when degraded)
    degraded: bool = False
    reasons: tuple[str, ...] = ()

    @property
    def time_ms(self) -> float:
        return self.metrics.total_time_ns / 1e6

    def as_dict(self) -> dict:
        out = {
            "intensity": self.intensity,
            "paradigm": self.paradigm,
            "degraded": self.degraded,
            "time_ms": self.time_ms,
            "goodput": self.metrics.goodput,
            **self.metrics.faults.as_dict(),
        }
        if self.reasons:
            out["reasons"] = list(self.reasons)
        return out


@dataclass
class ChaosResult:
    """A full sweep: scenario identity plus every measured point."""

    scenario: str
    workload: str
    points: list[ChaosPoint] = field(default_factory=list)
    #: Aggregate trace-cache traffic (``hits``/``misses``/``corrupt``)
    #: when the sweep ran through the grid executor; ``None`` for the
    #: in-process fallback path.  Excluded from :meth:`as_dict`.
    cache_stats: dict | None = field(default=None, compare=False)
    #: Executor retry/quarantine accounting (grid path only).
    retry_stats: dict | None = field(default=None, compare=False)
    #: Outcome-store traffic for the sweep (grid path only).
    outcome_cache: dict | None = field(default=None, compare=False)
    #: :class:`~repro.run.resilience.CellFailure` records of cells that
    #: exhausted their retry budget in a ``strict=False`` sweep; such
    #: cells have no :class:`ChaosPoint`.
    failures: list = field(default_factory=list, compare=False)

    def baseline(self, paradigm: str) -> ChaosPoint | None:
        """The intensity-0 (fault-free) point for one paradigm."""
        for p in self.points:
            if p.paradigm == paradigm and p.intensity == 0.0:
                return p
        return None

    def slowdown(self, point: ChaosPoint) -> float | None:
        """Run time of ``point`` relative to its fault-free baseline."""
        base = self.baseline(point.paradigm)
        if base is None or base.metrics.total_time_ns == 0:
            return None
        return point.metrics.total_time_ns / base.metrics.total_time_ns

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "workload": self.workload,
            "points": [
                {**p.as_dict(), "slowdown": self.slowdown(p)} for p in self.points
            ],
        }

    def write_json(self, path_or_file: str | IO[str]) -> None:
        obj = self.as_dict()
        if hasattr(path_or_file, "write"):
            json.dump(obj, path_or_file, indent=2)
        else:
            with open(path_or_file, "w") as f:
                json.dump(obj, f, indent=2)


def chaos_sweep(
    workload,
    schedule: FaultSchedule,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    paradigms: Sequence[str] = DEFAULT_PARADIGMS,
    config=None,
    topology_kind: str | None = None,
    tracer_factory=None,
    jobs: int = 1,
    trace_cache=None,
    **resilience,
) -> ChaosResult:
    """Sweep ``schedule`` intensity over ``paradigms`` for one workload.

    Parameters
    ----------
    workload:
        A workload object (``generate_trace`` provider).
    schedule:
        The scenario; each sweep point runs ``schedule.scaled(i)``.
    config:
        Optional :class:`~repro.sim.runner.ExperimentConfig`; its
        fabric settings seed the injector's retransmit parameters.
    topology_kind:
        Overrides the scenario's topology hint (default: the scenario's
        hint, else ``single_switch``).
    tracer_factory:
        Optional ``label -> Tracer`` callable; when given, every run is
        traced (and invariant-checked) under label
        ``"i{intensity}/{paradigm}"``.  Tracers are in-process objects,
        so this requires ``jobs=1``.
    jobs:
        Worker-process count for the (intensity x paradigm) grid.
        Results are byte-identical to the serial sweep; each cell is an
        isolated simulation and the grid order is deterministic.
    trace_cache:
        Optional :class:`repro.run.TraceCache` (or directory) sharing
        the workload trace across worker processes and invocations.
    **resilience:
        Supervised-executor knobs forwarded to
        :func:`repro.run.execute_grid` -- ``strict``, ``timeout``,
        ``retries``, ``retry``, ``outcome_store``, ``journal``,
        ``resume``.  With ``strict=False`` a cell that exhausts its
        retry budget lands in :attr:`ChaosResult.failures` instead of
        aborting the sweep (crash-survivable chaos campaigns).  The
        in-process fallback path for unregistered workloads ignores
        them.

    The trace is generated once and shared by all points, so the sweep
    isolates fabric behavior exactly like the paper's paradigm
    comparisons.
    """
    from ..run import GridExecutionError, RunSpec, execute_grid
    from ..sim.runner import ExperimentConfig

    config = config or ExperimentConfig()
    kind = topology_kind or schedule.topology or "single_switch"
    scenario_json = schedule.to_json(indent=None)

    try:
        base = RunSpec.for_workload(workload, **config.spec_fields())
    except (ValueError, TypeError, KeyError):
        base = None

    grid = [(i, name) for i in intensities for name in paradigms]
    labels = [f"i{intensity:g}/{name}" for intensity, name in grid]
    result = ChaosResult(scenario=schedule.name, workload=workload.name)

    if base is not None:
        specs = [
            base.with_options(
                paradigm=name,
                intensity=float(intensity),
                scenario=scenario_json,
                topology=kind,
                with_credits=schedule.with_credits,
            )
            for intensity, name in grid
        ]
        strict = resilience.pop("strict", True)
        grid_outcome = execute_grid(
            specs,
            jobs=jobs,
            trace_cache=trace_cache,
            tracer_factory=tracer_factory,
            labels=labels,
            strict=False,
            **resilience,
        )
        if strict and not grid_outcome.ok:
            raise GridExecutionError(grid_outcome)
        from ..run.resilience import CellFailure

        for (intensity, name), cell in zip(grid, grid_outcome.cells):
            if isinstance(cell, CellFailure):
                result.failures.append(cell)
                continue
            result.points.append(
                ChaosPoint(
                    intensity,
                    name,
                    cell.metrics,
                    degraded=cell.degraded,
                    reasons=cell.reasons,
                )
            )
        from ..run import aggregate_cache_stats

        result.cache_stats = aggregate_cache_stats(grid_outcome)
        result.retry_stats = dict(grid_outcome.retry_stats)
        result.outcome_cache = dict(grid_outcome.outcome_cache)
        return result

    # In-process fallback for ad-hoc (unregistered) workload objects.
    from ..run import RunContext
    from ..sim.runner import _override_spec

    trace = workload.generate_trace(
        n_gpus=config.n_gpus, iterations=config.iterations, seed=config.seed
    )
    for label, (intensity, name) in zip(labels, grid):
        spec = _override_spec(workload, config, name).with_options(
            intensity=float(intensity),
            scenario=scenario_json,
            topology=kind,
            with_credits=schedule.with_credits,
        )
        tracer = tracer_factory(label) if tracer_factory is not None else None
        ctx = RunContext(spec, workload=workload, trace=trace, tracer=tracer)
        outcome = ctx.execute()
        result.points.append(
            ChaosPoint(
                intensity,
                name,
                outcome.metrics,
                degraded=outcome.degraded,
                reasons=outcome.reasons,
            )
        )
    return result


def format_chaos_table(result: ChaosResult) -> str:
    """The degradation table ``repro chaos`` prints."""
    from ..analysis.report import format_table

    rows = []
    for p in result.points:
        slowdown = result.slowdown(p)
        f = p.metrics.faults
        rows.append(
            [
                f"{p.intensity:g}",
                p.paradigm,
                "DEGRADED" if p.degraded else "ok",
                p.time_ms,
                "-" if slowdown is None else f"{slowdown:.2f}x",
                round(p.metrics.goodput, 4),
                f.replays,
                f.retransmits,
                f.rerouted_messages,
                f.dropped_messages,
            ]
        )
    return format_table(
        f"chaos: {result.workload} under '{result.scenario}'",
        ["intensity", "paradigm", "status", "time_ms", "slowdown",
         "goodput", "replays", "rtx", "rerouted", "dropped"],
        rows,
        float_fmt="{:.3f}",
    )
