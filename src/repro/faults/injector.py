"""Compiles a :class:`FaultSchedule` onto a live topology.

The :class:`FaultInjector` is the bridge between declarative scenarios
and the runtime fault state the interconnect consults: ``arm()``
resolves each event's link pattern against the topology's concrete
links, builds one :class:`~repro.faults.state.LinkFaultState` (and
:class:`~repro.faults.state.PoolFaultState`) per affected component,
and -- when the run is traced -- declares every armed fault as a
``fault_injected`` event so the invariant checker knows drops may
legitimately occur.

Arming is idempotent and survives ``Topology.reset()``: the system
re-arms at the start of every run, so repeated runs over the same
schedule are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .schedule import (
    CrcBurst,
    CreditLeak,
    DrainSlowdown,
    FaultSchedule,
    LinkDegrade,
    LinkFail,
    LinkFlap,
)
from .state import FOREVER, LinkFaultState, PoolFaultState, Window


@dataclass
class FaultInjector:
    """Arms a schedule's faults onto links and credit pools.

    Parameters
    ----------
    schedule:
        The scenario to inject.
    retry_timeout_ns, max_retries:
        End-to-end retransmit parameters shared by every armed link
        (see :class:`~repro.core.config.FabricConfig`).
    """

    schedule: FaultSchedule
    retry_timeout_ns: float = 1_000.0
    max_retries: int = 10
    #: Links armed by the last :meth:`arm` call (for tests/reports).
    armed_links: list[str] = field(default_factory=list, repr=False)

    def compile_link_state(self, link_name: str) -> LinkFaultState | None:
        """The runtime fault state for one link name (``None`` if clean)."""
        degrade: list[Window] = []
        down: list[Window] = []
        crc: list[Window] = []
        for f in self.schedule.for_link(link_name):
            if isinstance(f, LinkDegrade):
                degrade.append(Window(f.start_ns, f.end_ns, f.factor))
            elif isinstance(f, LinkFlap):
                down.append(Window(f.start_ns, f.end_ns))
            elif isinstance(f, LinkFail):
                down.append(Window(f.start_ns, FOREVER))
            elif isinstance(f, CrcBurst):
                crc.append(Window(f.start_ns, f.end_ns, f.error_rate))
        if not (degrade or down or crc):
            return None
        return LinkFaultState(
            degrade=tuple(degrade),
            down=tuple(down),
            crc=tuple(crc),
            retry_timeout_ns=self.retry_timeout_ns,
            max_retries=self.max_retries,
        )

    def compile_pool_state(self, link_name: str) -> PoolFaultState | None:
        """The runtime fault state for one link's credit pool."""
        drain: list[Window] = []
        leak: list[Window] = []
        for f in self.schedule.for_link(link_name):
            if isinstance(f, DrainSlowdown):
                drain.append(Window(f.start_ns, f.end_ns, f.factor))
            elif isinstance(f, CreditLeak):
                leak.append(Window(f.start_ns, f.end_ns, f.leak_bytes))
        if not (drain or leak):
            return None
        return PoolFaultState(drain=tuple(drain), leak=tuple(leak))

    def arm(self, topology, tracer=None) -> None:
        """Attach fault state to every matching link of ``topology``.

        Call after ``topology.reset()``; re-arming replaces any earlier
        state so back-to-back runs start identical.  With a ``tracer``,
        every armed fault is declared via ``fault_injected`` events.
        """
        self.armed_links = []
        for link in topology.links.values():
            state = self.compile_link_state(link.name)
            link.arm_faults(state)
            pool_state = None
            if link.credits is not None:
                pool_state = self.compile_pool_state(link.name)
                link.credits.fault_state = pool_state
            if state is not None or pool_state is not None:
                self.armed_links.append(link.name)
        topology.rebuild_fault_cache()
        if tracer is not None:
            for f in self.schedule:
                matched = [n for n in self.armed_links if f.matches(n)]
                tracer.fault_injected(
                    f.kind, f.link, f.start_ns, f.end_ns, links=matched
                )

    def disarm(self, topology) -> None:
        """Detach all fault state (links become clean again)."""
        for link in topology.links.values():
            link.arm_faults(None)
            if link.credits is not None:
                link.credits.fault_state = None
        topology.rebuild_fault_cache()
        self.armed_links = []
