"""Fault injection and resilience: scripted link faults, graceful
degradation, and chaos sweeps.

The subsystem splits into policy and mechanism:

* :class:`FaultSchedule` (:mod:`repro.faults.schedule`) -- declarative,
  validated scenarios of typed, time-windowed fault events, parsed from
  dicts/JSON: :class:`LinkDegrade`, :class:`LinkFlap`,
  :class:`LinkFail`, :class:`CrcBurst`, :class:`DrainSlowdown`,
  :class:`CreditLeak`.
* :class:`FaultInjector` (:mod:`repro.faults.injector`) -- compiles a
  schedule onto a live topology's links and credit pools as runtime
  :mod:`repro.faults.state` objects the interconnect consults.
* Resilience -- faulted links retransmit with exponential backoff,
  topologies reroute around dead links, and runs that lose all paths
  raise :class:`DegradedRunError` carrying partial metrics instead of
  hanging.
* :func:`chaos_sweep` (:mod:`repro.faults.chaos`) -- sweeps a scenario's
  intensity across paradigms and reports the degradation curve (the
  ``repro chaos`` CLI).

Usage::

    from repro.faults import FaultInjector, load_scenario
    from repro.sim.system import MultiGPUSystem

    schedule = load_scenario("flaky-retimer")
    system = MultiGPUSystem.build(n_gpus=4, with_credits=True,
                                  fault_injector=FaultInjector(schedule))
    metrics = system.run(trace, paradigm)   # may raise DegradedRunError
    print(metrics.faults.as_dict())

See ``docs/faults.md`` for the scenario schema and semantics.
"""

from .chaos import ChaosPoint, ChaosResult, chaos_sweep, format_chaos_table
from .errors import DegradedRunError, ScenarioError
from .injector import FaultInjector
from .scenarios import SCENARIOS, list_scenarios, load_scenario
from .schedule import (
    FAULT_TYPES,
    CrcBurst,
    CreditLeak,
    DrainSlowdown,
    FaultEvent,
    FaultSchedule,
    LinkDegrade,
    LinkFail,
    LinkFlap,
)
from .state import (
    FOREVER,
    FaultError,
    LinkDownError,
    LinkFaultState,
    PoolFaultState,
    RouteBlockedError,
    Window,
)

__all__ = [
    "ChaosPoint",
    "ChaosResult",
    "chaos_sweep",
    "format_chaos_table",
    "DegradedRunError",
    "ScenarioError",
    "FaultInjector",
    "SCENARIOS",
    "list_scenarios",
    "load_scenario",
    "FAULT_TYPES",
    "CrcBurst",
    "CreditLeak",
    "DrainSlowdown",
    "FaultEvent",
    "FaultSchedule",
    "LinkDegrade",
    "LinkFail",
    "LinkFlap",
    "FOREVER",
    "FaultError",
    "LinkDownError",
    "LinkFaultState",
    "PoolFaultState",
    "RouteBlockedError",
    "Window",
]
