"""User-facing fault subsystem exceptions."""

from __future__ import annotations

from .state import FaultError


class ScenarioError(ValueError):
    """A fault scenario dict/JSON is malformed."""


class DegradedRunError(FaultError):
    """A run could not complete because the fabric degraded too far.

    Raised by :meth:`~repro.sim.system.MultiGPUSystem.run` when a
    message's destination became unreachable (a permanent link failure
    with no alternate path).  The simulation does **not** hang: the
    iteration in which degradation was detected finishes draining (the
    blocked messages are dropped and accounted), then this error is
    raised carrying the partial :class:`~repro.sim.metrics.RunMetrics`
    accumulated so far.

    Attributes
    ----------
    metrics:
        Partial run metrics through the degraded iteration (fault
        accounting included), or ``None`` if nothing completed.
    reasons:
        The route-blocked failures that triggered degradation.
    """

    def __init__(self, message: str, metrics=None, reasons: tuple[str, ...] = ()) -> None:
        self.metrics = metrics
        self.reasons = reasons
        self._message = message
        detail = f" ({'; '.join(reasons)})" if reasons else ""
        super().__init__(message + detail)

    def __reduce__(self):
        # Reconstruct from the *original* message, not the composed
        # args, so crossing a process boundary (the parallel executor's
        # workers) cannot double-append the reasons detail and the
        # metrics/reasons payload survives the round trip by contract
        # rather than by BaseException.__reduce__ accident.
        return (DegradedRunError, (self._message, self.metrics, self.reasons))
