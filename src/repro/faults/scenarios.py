"""Shipped chaos scenarios.

Each scenario is a plain dict in the scenario JSON schema (see
:mod:`repro.faults.schedule`), so ``repro chaos jacobi --scenario
flaky-retimer`` and a user-supplied JSON file go through exactly the
same parser.  Timings assume the default experiment scale (a few
hundred microseconds to a few milliseconds of simulated time); windows
deliberately land inside the first iterations so every workload
observes them.

``list_scenarios()`` / ``load_scenario()`` are the lookup surface the
CLI uses; ``load_scenario`` falls back to treating its argument as a
file path, so presets and files are interchangeable.
"""

from __future__ import annotations

import os

from ..registry import RegistryError
from ..registry import scenarios as _registry
from .errors import ScenarioError
from .schedule import FaultSchedule

#: Preset name -> scenario dict (the JSON schema, as Python literals).
#: Registered into :data:`repro.registry.scenarios` below; downstream
#: code can add presets with ``registry.scenarios.add(name, dict)``.
SCENARIOS: dict[str, dict] = {
    # PCIe lane retraining: one GPU's uplink renegotiates x16 -> x4 for
    # most of the run, dropping to x16/16 where the windows overlap.
    # (Timings target the default experiment scale: a 3-iteration run
    # lasts ~130-170 us with fabric traffic from ~0 to ~160 us.)
    "lane-retraining": {
        "name": "lane-retraining",
        "description": "gpu0 uplink retrains to quarter width mid-run",
        "faults": [
            {"type": "link_degrade", "link": "gpu0->*",
             "start_ns": 10_000.0, "end_ns": 150_000.0, "factor": 0.25},
            {"type": "link_degrade", "link": "gpu0->*",
             "start_ns": 50_000.0, "end_ns": 120_000.0, "factor": 0.25},
        ],
    },
    # A flapping retimer: repeated short outages plus a CRC error burst
    # on the same lane bundle; traffic rides through on retransmits.
    "flaky-retimer": {
        "name": "flaky-retimer",
        "description": "gpu0 uplink flaps twice and suffers CRC bursts",
        "faults": [
            {"type": "link_flap", "link": "gpu0->*",
             "start_ns": 30_000.0, "end_ns": 55_000.0},
            {"type": "link_flap", "link": "gpu0->*",
             "start_ns": 90_000.0, "end_ns": 110_000.0},
            {"type": "crc_burst", "link": "gpu0->*",
             "start_ns": 0.0, "end_ns": 2_000_000.0, "error_rate": 2e-5},
        ],
    },
    # A receiver that cannot keep up: its ingress drain slows to a
    # trickle and part of its buffer leaks away, squeezing credits.
    "slow-drain": {
        "name": "slow-drain",
        "description": "gpu1 ingress drains at 1/4 rate with leaked credits",
        "with_credits": True,
        "faults": [
            {"type": "drain_slowdown", "link": "*->gpu1",
             "start_ns": 20_000.0, "end_ns": 1_500_000.0, "factor": 0.25},
            {"type": "credit_leak", "link": "*->gpu1",
             "start_ns": 30_000.0, "end_ns": 1_000_000.0, "leak_bytes": 4096},
        ],
    },
    # A mid-run permanent link failure on a topology with alternate
    # paths: traffic reroutes (store-and-forward through a peer GPU).
    "link-failure": {
        "name": "link-failure",
        "description": "gpu0<->gpu1 dies mid-run; traffic reroutes via peers",
        "topology": "fully_connected",
        "faults": [
            {"type": "link_fail", "link": "gpu0->gpu1", "start_ns": 60_000.0},
            {"type": "link_fail", "link": "gpu1->gpu0", "start_ns": 60_000.0},
        ],
    },
    # A partitioning failure on the paper's single-switch tree: gpu0's
    # only uplink dies, no alternate path exists, and the run degrades
    # cleanly (DegradedRunError with partial metrics).
    "partition": {
        "name": "partition",
        "description": "gpu0's only uplink dies; the run degrades cleanly",
        "topology": "single_switch",
        "faults": [
            {"type": "link_fail", "link": "gpu0->sw0", "start_ns": 40_000.0},
        ],
    },
}


for _name, _preset in SCENARIOS.items():
    _registry.add(_name, _preset)


def list_scenarios() -> list[str]:
    return _registry.names()


def load_scenario(name_or_path: str) -> FaultSchedule:
    """Load a preset by registry name, or a scenario JSON file by path.

    Unknown names raise :class:`ScenarioError` carrying the registry's
    did-you-mean suggestions.
    """
    preset = _registry.get(name_or_path)
    if preset is not None:
        return FaultSchedule.from_dict(preset)
    if os.path.exists(name_or_path):
        return FaultSchedule.from_file(name_or_path)
    try:
        _registry.resolve(name_or_path)
    except RegistryError as exc:
        raise ScenarioError(f"{exc} -- and not a file") from None
    raise AssertionError("unreachable")  # pragma: no cover
