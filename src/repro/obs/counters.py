"""Monotonic counters, gauges and histograms, sampled into a timeline.

The :class:`CounterRegistry` is the aggregate side of the observability
layer: where events record *that* something happened, counters record
*how much* is happening -- bytes in flight, queue depths, packet-size
distributions.  The tracer snapshots the registry on a configurable
cadence into ``COUNTER_SAMPLE`` events, which export as Chrome-trace
counter tracks.

All structures are deterministic: snapshot key order is sorted, and
histogram buckets are fixed powers of two, so two identical runs emit
byte-identical samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically non-decreasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount


@dataclass
class Gauge:
    """An instantaneous level that may move in both directions."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


def _pow2_bounds(max_exp: int = 16) -> tuple[int, ...]:
    return tuple(1 << e for e in range(max_exp + 1))


@dataclass
class Histogram:
    """A fixed-bucket histogram (upper bounds, power-of-two by default).

    ``counts[i]`` holds observations ``<= bounds[i]``; the final slot
    counts overflows past the last bound.
    """

    name: str
    bounds: tuple[int, ...] = field(default_factory=_pow2_bounds)
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram bounds must be strictly increasing: {self.bounds}")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def nonzero_buckets(self) -> dict[str, int]:
        """``{"<=bound": count}`` for populated buckets (stable order)."""
        labels = [f"<={b}" for b in self.bounds] + [f">{self.bounds[-1]}"]
        return {lab: c for lab, c in zip(labels, self.counts) if c}


class CounterRegistry:
    """Create-or-get registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds: tuple[int, ...] | None = None) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = (
                Histogram(name, bounds) if bounds is not None else Histogram(name)
            )
        return h

    def snapshot(self) -> dict[str, float]:
        """Scalar view of every counter and gauge, sorted by name."""
        out: dict[str, float] = {}
        for name in sorted(self.counters):
            out[name] = self.counters[name].value
        for name in sorted(self.gauges):
            out[name] = self.gauges[name].value
        return out

    def histogram_summary(self) -> dict[str, dict]:
        """Bucketed view of every histogram, for export metadata."""
        return {
            name: {
                "total": h.total,
                "mean": h.mean,
                "buckets": h.nonzero_buckets(),
            }
            for name, h in sorted(self.histograms.items())
        }
