"""Runtime invariant checking over the trace event stream.

The :class:`InvariantChecker` subscribes to a :class:`~repro.obs.tracer.
Tracer` (or replays a recorded stream offline) and asserts, on every
event, the conservation laws the simulator must obey:

1. **byte conservation** -- at every barrier, and at the end of the
   run, ``injected == delivered + in-flight + dropped`` holds with
   in-flight empty at barriers (the bulk-synchronous model drains all
   traffic before the next iteration starts);
2. **message lifecycle** -- every message is delivered exactly once,
   after it was injected, and drains only after delivery;
3. **link exclusivity** -- a link direction serializes one message at a
   time: transmissions on one link never overlap;
4. **non-negative credits** -- flow-control occupancy reported by links
   never goes negative;
5. **monotonic engine time** -- the discrete-event engine never steps
   backwards (fed directly by the engine, not derived from events);
6. **empty remote write queues at barriers** -- the kernel-end release
   must have flushed every partition before an iteration closes;
7. **declared faults only** -- ``MSG_DROPPED`` is legal only in runs
   that declared injected faults up front (``FAULT_INJECTED`` events);
   byte conservation then holds modulo the declared drops.  A drop in a
   fault-free run is still a violation, and a ``LINK_STATE`` ``"up"``
   transition must close a matching ``"down"``.

A violation raises :class:`InvariantViolation` carrying the offending
event and a window of the most recent events for diagnosis.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from .events import EventKind, TraceEvent

#: Slack for float comparisons on simulated-time arithmetic.
_EPS = 1e-6


class InvariantViolation(AssertionError):
    """A simulator conservation law was broken.

    Attributes
    ----------
    event:
        The event that exposed the violation (``None`` for end-of-run
        checks).
    window:
        The most recent events observed before the failure.
    """

    def __init__(
        self,
        message: str,
        event: TraceEvent | None = None,
        window: Iterable[TraceEvent] = (),
    ) -> None:
        self.event = event
        self.window = list(window)
        lines = [message]
        if self.window:
            lines.append("recent events:")
            for e in self.window:
                lines.append(
                    f"  {e.time_ns:14.1f} ns  {e.kind.value:<14} {e.track:<18} {e.attrs}"
                )
        super().__init__("\n".join(lines))


class InvariantChecker:
    """Checks stream invariants event by event.

    Use online by passing it to ``Tracer(checker=...)`` (the default
    tracer construction does this for you), or offline via
    :meth:`replay` on a recorded event list.
    """

    def __init__(self, window: int = 16) -> None:
        self._recent: deque[TraceEvent] = deque(maxlen=window)
        #: msg_id -> (inject_time, payload_bytes) for undelivered messages.
        self._inflight: dict[int, tuple[float, int]] = {}
        #: msg_id -> delivery_time for messages not yet drained.
        self._awaiting_drain: dict[int, float] = {}
        self._injected_bytes = 0
        self._delivered_bytes = 0
        self._dropped_bytes = 0
        #: last reported pending entry count per RWQ partition track.
        self._rwq_pending: dict[str, int] = {}
        self._link_busy_until: dict[str, float] = {}
        self._engine_last_ns = 0.0
        self._last_iteration = -1
        #: True once any FAULT_INJECTED event was seen: drops become
        #: legal (byte conservation modulo declared drops).
        self._faults_declared = False
        #: link tracks currently in the "down" state.
        self._links_down: set[str] = set()
        self.events_checked = 0
        self.barriers_checked = 0

    # -- failure helper ---------------------------------------------

    def _fail(self, message: str, event: TraceEvent | None = None) -> None:
        raise InvariantViolation(message, event=event, window=self._recent)

    # -- engine hook (not an event: called once per engine step) -----

    def engine_time(self, now_ns: float) -> None:
        if now_ns < self._engine_last_ns - _EPS:
            self._fail(
                f"engine time went backwards: {now_ns} ns after "
                f"{self._engine_last_ns} ns"
            )
        self._engine_last_ns = now_ns

    # -- event stream ------------------------------------------------

    def observe(self, event: TraceEvent) -> None:
        self._recent.append(event)
        self.events_checked += 1
        kind = event.kind
        if kind is EventKind.MSG_INJECTED:
            mid = event.attrs["msg_id"]
            if mid in self._inflight:
                self._fail(f"message {mid} injected twice", event)
            payload = event.attrs["payload_bytes"]
            self._inflight[mid] = (event.time_ns, payload)
            self._injected_bytes += payload
        elif kind is EventKind.MSG_DELIVERED:
            mid = event.attrs["msg_id"]
            entry = self._inflight.pop(mid, None)
            if entry is None:
                self._fail(
                    f"message {mid} delivered without injection (or twice)", event
                )
            inject_time, payload = entry
            if event.time_ns < inject_time - _EPS:
                self._fail(
                    f"message {mid} delivered at {event.time_ns} ns before its "
                    f"injection at {inject_time} ns",
                    event,
                )
            self._delivered_bytes += payload
            self._awaiting_drain[mid] = event.time_ns
        elif kind is EventKind.MSG_DRAINED:
            mid = event.attrs["msg_id"]
            delivered_at = self._awaiting_drain.pop(mid, None)
            if delivered_at is None:
                self._fail(f"message {mid} drained without delivery", event)
            if event.time_ns < delivered_at - _EPS:
                self._fail(
                    f"message {mid} drained at {event.time_ns} ns before its "
                    f"delivery at {delivered_at} ns",
                    event,
                )
        elif kind is EventKind.MSG_DROPPED:
            mid = event.attrs["msg_id"]
            if not self._faults_declared:
                self._fail(
                    f"message {mid} dropped in a run with no declared faults",
                    event,
                )
            entry = self._inflight.pop(mid, None)
            if entry is None:
                self._fail(f"message {mid} dropped without injection", event)
            self._dropped_bytes += entry[1]
        elif kind is EventKind.FAULT_INJECTED:
            self._faults_declared = True
        elif kind is EventKind.LINK_STATE:
            state = event.attrs["state"]
            if state == "down":
                self._links_down.add(event.track)
            elif state == "up":
                if event.track not in self._links_down:
                    self._fail(
                        f"link {event.track} reported 'up' without a "
                        f"preceding 'down'",
                        event,
                    )
                self._links_down.discard(event.track)
            else:
                self._fail(f"unknown link state {state!r}", event)
        elif kind is EventKind.LINK_TX:
            busy_until = self._link_busy_until.get(event.track, 0.0)
            if event.time_ns < busy_until - _EPS:
                self._fail(
                    f"link {event.track} started a transmission at "
                    f"{event.time_ns} ns while busy until {busy_until} ns",
                    event,
                )
            if event.dur_ns < 0:
                self._fail(f"negative serialization time on {event.track}", event)
            self._link_busy_until[event.track] = event.end_ns
            credit = event.attrs.get("credit_bytes")
            if credit is not None and credit < 0:
                self._fail(
                    f"negative flow-control occupancy {credit} B on {event.track}",
                    event,
                )
        elif kind in (EventKind.RWQ_ENQUEUE, EventKind.RWQ_FLUSH):
            pending = event.attrs["pending_entries"]
            if pending < 0:
                self._fail(f"negative RWQ occupancy on {event.track}", event)
            self._rwq_pending[event.track] = pending
        elif kind is EventKind.BARRIER:
            self.barriers_checked += 1
            self._check_conservation(event, at_barrier=True)
        elif kind is EventKind.ITERATION:
            index = event.attrs["index"]
            if index != self._last_iteration + 1:
                self._fail(
                    f"iteration {index} closed after iteration "
                    f"{self._last_iteration}",
                    event,
                )
            self._last_iteration = index

    def _check_conservation(self, event: TraceEvent | None, at_barrier: bool) -> None:
        where = (
            f"at barrier (iteration {event.attrs.get('iteration')})"
            if at_barrier and event is not None
            else "at end of run"
        )
        if self._inflight:
            sample = sorted(self._inflight)[:4]
            self._fail(
                f"{len(self._inflight)} message(s) still in flight {where} "
                f"(ids {sample}): injected {self._injected_bytes} B != "
                f"delivered {self._delivered_bytes} B + dropped "
                f"{self._dropped_bytes} B",
                event,
            )
        if self._injected_bytes != self._delivered_bytes + self._dropped_bytes:
            self._fail(
                f"byte conservation broken {where}: injected "
                f"{self._injected_bytes} B != delivered {self._delivered_bytes} B "
                f"+ dropped {self._dropped_bytes} B",
                event,
            )
        stuck = {t: n for t, n in self._rwq_pending.items() if n}
        if stuck:
            self._fail(
                f"remote write queue not empty {where}: {stuck}", event
            )

    def finish(self) -> None:
        """End-of-run checks (conservation plus drain completeness)."""
        if self._awaiting_drain:
            sample = sorted(self._awaiting_drain)[:4]
            self._fail(
                f"{len(self._awaiting_drain)} delivered message(s) never "
                f"drained (ids {sample})"
            )
        self._check_conservation(None, at_barrier=False)

    @classmethod
    def replay(cls, events: Iterable[TraceEvent], window: int = 16) -> "InvariantChecker":
        """Check a recorded stream offline; returns the finished checker."""
        checker = cls(window=window)
        for event in events:
            checker.observe(event)
        checker.finish()
        return checker
