"""Observability layer: structured tracing, counters, exporters, and
runtime invariant checking.

Usage::

    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer()                      # invariant checking on by default
    metrics = system.run(trace, paradigm, tracer=tracer)
    write_chrome_trace("run.json", tracer)  # open in chrome://tracing

See ``docs/observability.md`` for the event schema and exporter
formats, and ``examples/trace_export.py`` for a complete walkthrough.
"""

from .counters import Counter, CounterRegistry, Gauge, Histogram
from .events import SPAN_KINDS, EventKind, TraceEvent
from .export import (
    TraceSchemaError,
    chrome_trace_dict,
    chrome_trace_events,
    read_jsonl,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from .invariants import InvariantChecker, InvariantViolation
from .tracer import Tracer

__all__ = [
    "Counter",
    "CounterRegistry",
    "Gauge",
    "Histogram",
    "EventKind",
    "SPAN_KINDS",
    "TraceEvent",
    "TraceSchemaError",
    "chrome_trace_dict",
    "chrome_trace_events",
    "read_jsonl",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_jsonl",
    "InvariantChecker",
    "InvariantViolation",
    "Tracer",
]
