"""Typed trace events: the vocabulary of the observability layer.

Every observable thing that happens during a simulation is one
:class:`TraceEvent`: a kind, a timestamp (ns of simulated time), an
optional duration (span events), the *track* it belongs to (a GPU, a
link, a src->dst flow -- the "thread" lane a viewer draws it on), and a
flat ``attrs`` dict of primitive values.  The schema is deliberately
small and closed: exporters and the invariant checker switch on
:class:`EventKind`, so adding a kind means deciding how it exports and
which invariants it participates in.

Event kinds and when they fire
------------------------------

========================  =====================================================
kind                      emitted when
========================  =====================================================
``MSG_INJECTED``          a wire message enters the interconnect at its source
``MSG_DELIVERED``         the message arrives at the destination endpoint
``MSG_DRAINED``           the payload has drained into destination memory
``MSG_DROPPED``           a message is discarded -- graceful degradation drops
                          messages whose destination became unreachable (see
                          :mod:`repro.faults`); only legal in runs that also
                          declared faults via ``FAULT_INJECTED``
``LINK_TX``               one serialization occupancy of one link direction
``FAULT_INJECTED``        a scheduled fault is armed on the fabric (one event
                          per :class:`~repro.faults.schedule.FaultEvent`, at
                          arm time, carrying the fault window in ``attrs``)
``LINK_STATE``            a link direction changes health state (``"down"`` at
                          an outage window opening, ``"up"`` at its close)
``RWQ_ENQUEUE``           a store is buffered in a remote-write-queue partition
``RWQ_FLUSH``             a partition hands a window to the packetizer (the
                          flush reason -- release, timeout, window miss,
                          payload full ... -- rides in ``attrs["reason"]``)
``KERNEL``                one GPU's kernel span for one iteration
``FENCE_RELEASE``         the kernel-end system-scoped release on one GPU
``BARRIER``               the inter-GPU barrier span closing an iteration
``ITERATION``             the whole-iteration span (compute + drain + barrier)
``COUNTER_SAMPLE``        a cadence sample of the counter registry
``CELL_RETRIED``          the supervised grid executor re-queues a crashed,
                          hung or raising cell for another attempt (executor
                          wall-clock time, not simulated time)
``CELL_QUARANTINED``      a grid cell exhausted its retry budget and is
                          reported as a :class:`CellFailure`
``OUTCOME_CACHE``         an :class:`~repro.run.outcomes.OutcomeStore` lookup
                          (``attrs["result"]`` is ``"hit"`` or ``"miss"``)
========================  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    """The closed set of event types the observability layer emits."""

    # Identity hashing, as for MessageKind: enum members are singletons
    # and these are hashed in per-event code.
    __hash__ = object.__hash__

    MSG_INJECTED = "msg_injected"
    MSG_DELIVERED = "msg_delivered"
    MSG_DRAINED = "msg_drained"
    MSG_DROPPED = "msg_dropped"
    LINK_TX = "link_tx"
    FAULT_INJECTED = "fault_injected"
    LINK_STATE = "link_state"
    RWQ_ENQUEUE = "rwq_enqueue"
    RWQ_FLUSH = "rwq_flush"
    KERNEL = "kernel"
    FENCE_RELEASE = "fence_release"
    BARRIER = "barrier"
    ITERATION = "iteration"
    COUNTER_SAMPLE = "counter_sample"
    CELL_RETRIED = "cell_retried"
    CELL_QUARANTINED = "cell_quarantined"
    OUTCOME_CACHE = "outcome_cache"


#: Kinds rendered as duration spans ("X" complete events in the Chrome
#: trace format); everything else is an instant or a counter sample.
SPAN_KINDS = frozenset(
    {
        EventKind.LINK_TX,
        EventKind.KERNEL,
        EventKind.BARRIER,
        EventKind.ITERATION,
    }
)


@dataclass(slots=True)
class TraceEvent:
    """One observable occurrence in a simulation.

    Attributes
    ----------
    kind:
        The event type; exporters and checkers dispatch on it.
    time_ns:
        Simulated start time in nanoseconds.
    track:
        The lane the event belongs to: ``"gpu2"``, ``"gpu0->sw0"``,
        ``"flow gpu1->gpu3"``, ``"system"`` ...  Exporters map tracks to
        viewer threads.
    name:
        Human-readable label shown by trace viewers.
    dur_ns:
        Span duration; 0 for instants.
    attrs:
        Flat primitive annotations (ints, floats, strings, bools).
    """

    kind: EventKind
    time_ns: float
    track: str
    name: str
    dur_ns: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def end_ns(self) -> float:
        return self.time_ns + self.dur_ns

    def to_jsonable(self) -> dict:
        """Compact dict for the JSONL exporter (stable key order)."""
        out = {
            "kind": self.kind.value,
            "time_ns": self.time_ns,
            "track": self.track,
            "name": self.name,
        }
        if self.dur_ns:
            out["dur_ns"] = self.dur_ns
        if self.attrs:
            out["attrs"] = self.attrs
        return out
