"""Trace exporters: Chrome ``trace_event`` JSON and compact JSONL.

Two formats:

* :func:`write_chrome_trace` -- the Chrome/Perfetto ``trace_event``
  JSON object format (open it in ``chrome://tracing`` or
  https://ui.perfetto.dev).  Tracks become named threads; span events
  export as complete ("X") events, instants as "i", counter samples as
  "C".  Multiple tracers (e.g. one per sweep configuration) merge into
  one file as separate processes.
* :func:`write_jsonl` -- one event per line in the tracer's native
  schema, for ad-hoc ``jq``/pandas analysis and replay into an
  :class:`~repro.obs.invariants.InvariantChecker`.

Both exports are byte-deterministic for a deterministic run: track ids
are assigned in first-appearance order and JSON keys are emitted in
schema order.

:func:`validate_chrome_trace` is a dependency-free structural validator
used by tests and ``make verify`` to guarantee emitted files actually
load in trace viewers.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Mapping

from .events import SPAN_KINDS, EventKind, TraceEvent
from .tracer import Tracer

#: Chrome trace timestamps are microseconds; ours are nanoseconds.
_NS_TO_US = 1e-3

#: Event phases the validator accepts (the subset we emit).
_VALID_PHASES = frozenset({"X", "i", "C", "M"})


class TraceSchemaError(ValueError):
    """An exported trace object violates the Chrome trace_event schema."""


def _track_order(events: Iterable[TraceEvent]) -> list[str]:
    """Tracks in first-appearance order (deterministic tid assignment)."""
    seen: dict[str, None] = {}
    for e in events:
        if e.track not in seen:
            seen[e.track] = None
    return list(seen)


def chrome_trace_events(
    tracer: Tracer, pid: int = 0, process_name: str | None = None
) -> list[dict]:
    """Convert one tracer's stream to Chrome ``traceEvents`` dicts."""
    out: list[dict] = []
    if process_name is not None:
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        )
    tids = {track: i + 1 for i, track in enumerate(_track_order(tracer.events))}
    for track, tid in tids.items():
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for e in tracer.events:
        base = {
            "name": e.name,
            "cat": e.kind.value,
            "ts": e.time_ns * _NS_TO_US,
            "pid": pid,
            "tid": tids[e.track],
        }
        if e.kind is EventKind.COUNTER_SAMPLE:
            base["ph"] = "C"
            base["args"] = dict(e.attrs)
        elif e.kind in SPAN_KINDS:
            base["ph"] = "X"
            base["dur"] = e.dur_ns * _NS_TO_US
            base["args"] = dict(e.attrs)
        else:
            base["ph"] = "i"
            base["s"] = "t"
            base["args"] = dict(e.attrs)
        out.append(base)
    return out


def chrome_trace_dict(
    tracers: Tracer | Mapping[str, Tracer],
    metadata: Mapping[str, object] | None = None,
) -> dict:
    """Build the full Chrome trace object.

    Pass a single tracer for one run, or a ``{label: tracer}`` mapping
    (e.g. one per sweep configuration) to merge runs as separate
    processes in one file.
    """
    if isinstance(tracers, Tracer):
        tracers = {"run": tracers}
    events: list[dict] = []
    summaries: dict[str, dict] = {}
    for pid, (label, tracer) in enumerate(tracers.items()):
        events.extend(chrome_trace_events(tracer, pid=pid, process_name=label))
        summaries[label] = tracer.summary()
    meta: dict[str, object] = {"tool": "repro.obs", "runs": summaries}
    if metadata:
        meta.update(metadata)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "metadata": meta,
    }


def write_chrome_trace(
    path_or_file: str | IO[str],
    tracers: Tracer | Mapping[str, Tracer],
    metadata: Mapping[str, object] | None = None,
) -> dict:
    """Write a Chrome trace JSON file; returns the exported object."""
    obj = chrome_trace_dict(tracers, metadata=metadata)
    if hasattr(path_or_file, "write"):
        json.dump(obj, path_or_file)
    else:
        with open(path_or_file, "w") as f:
            json.dump(obj, f)
    return obj


def write_jsonl(path_or_file: str | IO[str], tracer: Tracer) -> None:
    """Write the native event stream, one JSON object per line."""

    def _dump(f: IO[str]) -> None:
        for e in tracer.events:
            f.write(json.dumps(e.to_jsonable()))
            f.write("\n")

    if hasattr(path_or_file, "write"):
        _dump(path_or_file)
    else:
        with open(path_or_file, "w") as f:
            _dump(f)


def read_jsonl(path_or_file: str | IO[str]) -> list[TraceEvent]:
    """Load a JSONL stream back into typed events (for offline replay)."""

    def _load(f: IO[str]) -> list[TraceEvent]:
        events = []
        for line in f:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            events.append(
                TraceEvent(
                    kind=EventKind(raw["kind"]),
                    time_ns=raw["time_ns"],
                    track=raw["track"],
                    name=raw["name"],
                    dur_ns=raw.get("dur_ns", 0.0),
                    attrs=raw.get("attrs", {}),
                )
            )
        return events

    if hasattr(path_or_file, "read"):
        return _load(path_or_file)
    with open(path_or_file) as f:
        return _load(f)


def validate_chrome_trace(obj: object) -> None:
    """Structurally validate a Chrome trace object; raises on problems.

    Checks the subset of the ``trace_event`` format this exporter emits:
    a ``traceEvents`` list whose entries carry the required keys with
    the right types for their phase.  A file passing this check loads
    in ``chrome://tracing`` and Perfetto.
    """
    if not isinstance(obj, dict):
        raise TraceSchemaError(f"trace must be a JSON object, got {type(obj).__name__}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise TraceSchemaError("trace object lacks a 'traceEvents' list")
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            raise TraceSchemaError(f"{where} is not an object")
        ph = e.get("ph")
        if ph not in _VALID_PHASES:
            raise TraceSchemaError(f"{where} has invalid phase {ph!r}")
        if not isinstance(e.get("name"), str):
            raise TraceSchemaError(f"{where} lacks a string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                raise TraceSchemaError(f"{where} lacks an integer {key!r}")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise TraceSchemaError(f"{where} has invalid ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceSchemaError(f"{where} complete event has invalid dur {dur!r}")
        if ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise TraceSchemaError(f"{where} counter args must be numeric")
        if ph == "M":
            if e["name"] not in ("process_name", "thread_name"):
                raise TraceSchemaError(f"{where} unknown metadata {e['name']!r}")
            args = e.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                raise TraceSchemaError(f"{where} metadata lacks args.name")


def validate_chrome_trace_file(path: str) -> dict:
    """Load and validate a Chrome trace JSON file; returns the object."""
    with open(path) as f:
        obj = json.load(f)
    validate_chrome_trace(obj)
    return obj
