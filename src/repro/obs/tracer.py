"""The structured event tracer.

One :class:`Tracer` observes one simulation run.  Call sites throughout
the simulator hold an optional tracer reference and guard every hook
with ``if tracer is not None`` -- a single pointer comparison -- so a
run without tracing pays essentially nothing.  With tracing on, the
tracer:

* records typed :class:`~repro.obs.events.TraceEvent` objects into an
  in-memory stream (exported later via :mod:`repro.obs.export`),
* maintains a :class:`~repro.obs.counters.CounterRegistry` of
  counters/gauges/histograms and snapshots it into ``COUNTER_SAMPLE``
  events on a configurable cadence of simulated time,
* forwards every event to subscribers -- by default an
  :class:`~repro.obs.invariants.InvariantChecker` that asserts
  conservation laws as the run progresses.

Emission methods are *typed* (``message_injected``, ``rwq_flush``,
``kernel`` ...) rather than free-form so event attributes stay
schema-stable across the codebase.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .counters import CounterRegistry
from .events import EventKind, TraceEvent
from .invariants import InvariantChecker

if TYPE_CHECKING:  # pragma: no cover
    from ..core.remote_write_queue import FlushedWindow
    from ..interconnect.message import WireMessage


class Tracer:
    """Collects one run's structured event stream.

    Parameters
    ----------
    sample_every_ns:
        Cadence (simulated ns) of counter-registry snapshots; ``None``
        disables sampling.
    check_invariants:
        Attach an online :class:`InvariantChecker` (the default).  The
        checker raises :class:`~repro.obs.invariants.InvariantViolation`
        the moment a conservation law breaks.
    """

    def __init__(
        self,
        sample_every_ns: float | None = 10_000.0,
        check_invariants: bool = True,
    ) -> None:
        if sample_every_ns is not None and sample_every_ns <= 0:
            raise ValueError(f"sample_every_ns must be positive: {sample_every_ns}")
        self.events: list[TraceEvent] = []
        self.counters = CounterRegistry()
        self.checker: InvariantChecker | None = (
            InvariantChecker() if check_invariants else None
        )
        self._subscribers: list[Callable[[TraceEvent], None]] = []
        if self.checker is not None:
            self._subscribers.append(self.checker.observe)
        self._sample_every = sample_every_ns
        self._next_sample = sample_every_ns if sample_every_ns is not None else None
        self._max_time_ns = 0.0
        self._msg_seq = 0
        self._rwq_pending: dict[str, int] = {}
        self._finished = False

    # -- plumbing ----------------------------------------------------

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked on every emitted event."""
        self._subscribers.append(fn)

    def _emit(
        self,
        kind: EventKind,
        time_ns: float,
        track: str,
        name: str,
        dur_ns: float = 0.0,
        attrs: dict | None = None,
    ) -> TraceEvent:
        event = TraceEvent(
            kind=kind,
            time_ns=time_ns,
            track=track,
            name=name,
            dur_ns=dur_ns,
            attrs=attrs or {},
        )
        self.events.append(event)
        for fn in self._subscribers:
            fn(event)
        self._maybe_sample(max(time_ns, time_ns + dur_ns))
        return event

    def _maybe_sample(self, time_ns: float) -> None:
        if time_ns > self._max_time_ns:
            self._max_time_ns = time_ns
        if self._next_sample is None or self._max_time_ns < self._next_sample:
            return
        snap = self.counters.snapshot()
        # One sample per crossed cadence boundary would replay identical
        # values on big time jumps; a single sample at the crossing is
        # enough for a piecewise-constant counter track.
        event = TraceEvent(
            kind=EventKind.COUNTER_SAMPLE,
            time_ns=self._next_sample,
            track="counters",
            name="counters",
            attrs=snap,
        )
        self.events.append(event)
        for fn in self._subscribers:
            fn(event)
        assert self._sample_every is not None
        periods = int(self._max_time_ns // self._sample_every) + 1
        self._next_sample = periods * self._sample_every

    # -- message lifecycle ------------------------------------------

    def message_injected(self, msg: "WireMessage", time_ns: float) -> int:
        """Record a message entering the interconnect; returns its id."""
        mid = self._msg_seq
        self._msg_seq += 1
        c = self.counters
        c.counter("messages_injected").inc()
        c.counter("payload_bytes_injected").inc(msg.payload_bytes)
        c.counter("wire_bytes_injected").inc(msg.wire_bytes)
        c.gauge("payload_bytes_in_flight").add(msg.payload_bytes)
        c.histogram("packet_wire_bytes").observe(msg.wire_bytes)
        c.histogram("stores_per_packet").observe(msg.stores_packed)
        self._emit(
            EventKind.MSG_INJECTED,
            time_ns,
            f"flow gpu{msg.src}->gpu{msg.dst}",
            msg.kind.value,
            attrs={
                "msg_id": mid,
                "src": msg.src,
                "dst": msg.dst,
                "payload_bytes": msg.payload_bytes,
                "overhead_bytes": msg.overhead_bytes,
                "stores_packed": msg.stores_packed,
            },
        )
        return mid

    def message_delivered(self, msg_id: int, msg: "WireMessage", time_ns: float) -> None:
        c = self.counters
        c.counter("payload_bytes_delivered").inc(msg.payload_bytes)
        c.gauge("payload_bytes_in_flight").add(-msg.payload_bytes)
        self._emit(
            EventKind.MSG_DELIVERED,
            time_ns,
            f"flow gpu{msg.src}->gpu{msg.dst}",
            msg.kind.value,
            attrs={"msg_id": msg_id, "payload_bytes": msg.payload_bytes},
        )

    def message_drained(self, msg_id: int, msg: "WireMessage", time_ns: float) -> None:
        self._emit(
            EventKind.MSG_DRAINED,
            time_ns,
            f"flow gpu{msg.src}->gpu{msg.dst}",
            msg.kind.value,
            attrs={"msg_id": msg_id},
        )

    def message_dropped(self, msg_id: int, msg: "WireMessage", time_ns: float) -> None:
        self.counters.counter("payload_bytes_dropped").inc(msg.payload_bytes)
        self.counters.gauge("payload_bytes_in_flight").add(-msg.payload_bytes)
        self._emit(
            EventKind.MSG_DROPPED,
            time_ns,
            f"flow gpu{msg.src}->gpu{msg.dst}",
            msg.kind.value,
            attrs={"msg_id": msg_id, "payload_bytes": msg.payload_bytes},
        )

    # -- interconnect -----------------------------------------------

    def link_transmit(
        self,
        link_name: str,
        msg: "WireMessage",
        start_ns: float,
        end_ns: float,
        credit_bytes: int | None = None,
    ) -> None:
        """Record one serialization occupancy of one link direction."""
        self.counters.counter(f"link_wire_bytes:{link_name}").inc(msg.wire_bytes)
        attrs: dict = {
            "wire_bytes": msg.wire_bytes,
            "src": msg.src,
            "dst": msg.dst,
        }
        if credit_bytes is not None:
            attrs["credit_bytes"] = credit_bytes
        self._emit(
            EventKind.LINK_TX,
            start_ns,
            link_name,
            msg.kind.value,
            dur_ns=end_ns - start_ns,
            attrs=attrs,
        )

    # -- faults ------------------------------------------------------

    def fault_injected(
        self,
        fault_kind: str,
        link_pattern: str,
        start_ns: float,
        end_ns: float,
        links: tuple[str, ...] = (),
    ) -> None:
        """Declare one scheduled fault at arm time.

        Emitted once per :class:`~repro.faults.schedule.FaultEvent` when
        a :class:`~repro.faults.injector.FaultInjector` arms a topology.
        Declaring faults up front switches the invariant checker into
        fault-aware mode: ``MSG_DROPPED`` events become legal (byte
        conservation still holds modulo the declared drops).
        """
        self.counters.counter("faults_injected").inc()
        attrs: dict = {
            "fault": fault_kind,
            "link": link_pattern,
            "start_ns": start_ns,
        }
        # Permanent faults have an infinite window; JSON exporters choke
        # on Infinity, so only finite closings are recorded.
        if end_ns != float("inf"):
            attrs["end_ns"] = end_ns
        if links:
            attrs["links"] = list(links)
        self._emit(
            EventKind.FAULT_INJECTED,
            0.0,
            "faults",
            f"{fault_kind}:{link_pattern}",
            attrs=attrs,
        )

    def link_state_change(
        self,
        link_name: str,
        state: str,
        time_ns: float,
        until_ns: float | None = None,
    ) -> None:
        """Record a link-health transition (``"down"`` / ``"up"``)."""
        self.counters.counter(f"link_state:{state}").inc()
        attrs: dict = {"state": state}
        if until_ns is not None and until_ns != float("inf"):
            attrs["until_ns"] = until_ns
        self._emit(
            EventKind.LINK_STATE,
            time_ns,
            link_name,
            state,
            attrs=attrs,
        )

    # -- remote write queue -----------------------------------------

    def rwq_enqueue(
        self,
        gpu: int,
        dst: int,
        addr: int,
        size: int,
        time_ns: float,
        pending_entries: int,
    ) -> None:
        track = f"rwq gpu{gpu}->gpu{dst}"
        self._rwq_track(track, pending_entries)
        self.counters.counter("rwq_stores_enqueued").inc()
        self._emit(
            EventKind.RWQ_ENQUEUE,
            time_ns,
            track,
            "store",
            attrs={
                "addr": addr,
                "size": size,
                "pending_entries": pending_entries,
            },
        )

    def rwq_flush(
        self,
        gpu: int,
        dst: int,
        window: "FlushedWindow",
        data_bytes: int,
        time_ns: float,
        pending_entries: int,
    ) -> None:
        track = f"rwq gpu{gpu}->gpu{dst}"
        self._rwq_track(track, pending_entries)
        reason = window.reason.value
        self.counters.counter(f"rwq_flushes:{reason}").inc()
        self.counters.histogram("rwq_flush_data_bytes").observe(data_bytes)
        self._emit(
            EventKind.RWQ_FLUSH,
            time_ns,
            track,
            f"flush:{reason}",
            attrs={
                "reason": reason,
                "data_bytes": data_bytes,
                "stores_absorbed": window.stores_absorbed,
                "pending_entries": pending_entries,
            },
        )

    def _rwq_track(self, track: str, pending_entries: int) -> None:
        old = self._rwq_pending.get(track, 0)
        self._rwq_pending[track] = pending_entries
        self.counters.gauge("rwq_pending_entries").add(pending_entries - old)

    # -- execution structure ----------------------------------------

    def kernel(self, gpu: int, start_ns: float, end_ns: float, iteration: int) -> None:
        self._emit(
            EventKind.KERNEL,
            start_ns,
            f"gpu{gpu}",
            f"kernel it{iteration}",
            dur_ns=end_ns - start_ns,
            attrs={"gpu": gpu, "iteration": iteration},
        )

    def fence_release(self, gpu: int, time_ns: float) -> None:
        self._emit(
            EventKind.FENCE_RELEASE,
            time_ns,
            f"gpu{gpu}",
            "release",
            attrs={"gpu": gpu},
        )

    def barrier(self, iteration: int, start_ns: float, end_ns: float) -> None:
        self._emit(
            EventKind.BARRIER,
            start_ns,
            "system",
            f"barrier it{iteration}",
            dur_ns=end_ns - start_ns,
            attrs={"iteration": iteration},
        )

    def iteration(self, index: int, start_ns: float, end_ns: float) -> None:
        self._emit(
            EventKind.ITERATION,
            start_ns,
            "system",
            f"iteration {index}",
            dur_ns=end_ns - start_ns,
            attrs={"index": index},
        )

    # -- grid executor ------------------------------------------------
    #
    # Grid-level events live on the "grid" track and carry *executor
    # wall-clock* nanoseconds since grid start, not simulated time --
    # they describe the orchestration layer, not the fabric.

    def cell_retried(
        self,
        index: int,
        key: str,
        attempt: int,
        kind: str,
        error_type: str,
        time_ns: float,
    ) -> None:
        """A grid cell is re-queued after a failed attempt."""
        self.counters.counter("cells_retried").inc()
        self._emit(
            EventKind.CELL_RETRIED,
            time_ns,
            "grid",
            f"retry cell {index}",
            attrs={
                "index": index,
                "key": key,
                "attempt": attempt,
                "failure": kind,
                "error": error_type,
            },
        )

    def cell_quarantined(
        self,
        index: int,
        key: str,
        attempts: int,
        kind: str,
        error_type: str,
        time_ns: float,
    ) -> None:
        """A grid cell exhausted its retry budget."""
        self.counters.counter("cells_quarantined").inc()
        self._emit(
            EventKind.CELL_QUARANTINED,
            time_ns,
            "grid",
            f"quarantine cell {index}",
            attrs={
                "index": index,
                "key": key,
                "attempts": attempts,
                "failure": kind,
                "error": error_type,
            },
        )

    def outcome_cache(self, result: str, key: str, time_ns: float) -> None:
        """One :class:`OutcomeStore` lookup (``result``: hit/miss)."""
        self.counters.counter(f"outcome_cache:{result}").inc()
        self._emit(
            EventKind.OUTCOME_CACHE,
            time_ns,
            "grid",
            f"outcome {result}",
            attrs={"result": result, "key": key},
        )

    # -- engine hook -------------------------------------------------

    def engine_step(self, now_ns: float) -> None:
        """Per-event engine callback: invariant check only, no event."""
        if self.checker is not None:
            self.checker.engine_time(now_ns)

    # -- lifecycle ----------------------------------------------------

    def finish(self) -> None:
        """Close the run: final conservation checks, final sample."""
        if self._finished:
            return
        self._finished = True
        if self._next_sample is not None and self.events:
            self._next_sample = self._max_time_ns
            self._maybe_sample(self._max_time_ns)
        if self.checker is not None:
            self.checker.finish()

    def summary(self) -> dict:
        """Compact roll-up for reports and export metadata."""
        return {
            "events": len(self.events),
            "max_time_ns": self._max_time_ns,
            "counters": self.counters.snapshot(),
            "histograms": self.counters.histogram_summary(),
        }
